//! The subcommand implementations; each renders a human-readable report
//! string (and may write CSV artifacts when `--out` is given).

use std::fmt::Write as _;

use bcn::cases::classify_params;
use bcn::simulate::{fluid_trajectory_telemetry, FluidOptions};
use bcn::stability::{
    criterion, exact_verdict, exact_verdicts, theorem1_holds, theorem1_required_buffer,
    StabilityVerdict,
};
use bcn::transient;
use bcn::{linear_baseline, BcnFluid, BcnParams};
use dcesim::batch::{
    run_batch, run_batch_checkpointed, run_net_batch, run_net_batch_checkpointed, seeded_config,
    BatchConfig, NetBatchConfig, PANIC_AFTER_STEPS,
};
use dcesim::checkpoint::{
    encode_replay_context, replay_spec_from_postmortem, sim_config_digest, BatchCheckpoint,
    NetBatchCheckpoint,
};
use dcesim::faults::FaultCounts;
use dcesim::hybrid::{HybridSim, HybridSpec, HybridStats};
use dcesim::net::{NetReport, NetSim};
use dcesim::sim::{SimConfig, Simulation};
use dcesim::time::Duration;
use dcesim::topo::{compile, TopoSpec, Traffic};
use plotkit::{Csv, Table};
use telemetry::{Telemetry, TelemetryLevel};

use crate::flags::{
    engine_choice, faults_from, hybrid_guards_from, params_from, scheduler_choice,
    sim_engine_choice, telemetry_level, topo_request, Flags, SimEngine, PARAM_FLAGS,
};
use crate::{report as report_pipeline, CliError};

fn with_param_flags(extra: &[&str]) -> Vec<&'static str> {
    // Leaking tiny strings is fine for a CLI's static flag tables.
    let mut v: Vec<&'static str> = PARAM_FLAGS.to_vec();
    // `--telemetry` and `--threads` are global: every subcommand
    // accepts them (`--threads` is applied process-wide in `run`
    // before the command dispatch; each command still validates it).
    v.push("telemetry");
    v.push("threads");
    for e in extra {
        v.push(Box::leak(e.to_string().into_boxed_str()));
    }
    v
}

/// Renders the counters and histograms a run collected as aligned
/// tables (empty metrics are omitted).
fn render_summary(tel: &Telemetry) -> String {
    let mut out = String::new();
    if !tel.enabled() {
        let _ = writeln!(out, "telemetry: off (nothing recorded)");
        return out;
    }
    let _ = writeln!(out, "telemetry summary (level = {}):", tel.level());
    let mut counters = Table::new(&["counter", "value"]);
    for (name, v) in tel.metrics.counters() {
        if v > 0 {
            counters.row(&[name.to_string(), v.to_string()]);
        }
    }
    if !counters.is_empty() {
        let _ = write!(out, "{counters}");
    }
    let mut hists = Table::new(&["histogram", "count", "p50", "p90", "p99", "max"]);
    for (name, h) in tel.metrics.histograms() {
        if h.count() > 0 {
            hists.row(&[
                name.to_string(),
                h.count().to_string(),
                format!("{:.4e}", h.p50()),
                format!("{:.4e}", h.p90()),
                format!("{:.4e}", h.p99()),
                format!("{:.4e}", h.max()),
            ]);
        }
    }
    if !hists.is_empty() {
        let _ = write!(out, "{hists}");
    }
    if tel.level().traces() {
        let _ = writeln!(
            out,
            "trace: {} events{}",
            tel.trace.len(),
            if tel.trace.overwritten() > 0 {
                format!(" ({} oldest overwritten)", tel.trace.overwritten())
            } else {
                String::new()
            }
        );
    }
    out
}

/// Renders the non-zero per-class injection tallies (empty string for a
/// fault-free run).
fn render_fault_counts(c: &FaultCounts) -> String {
    let mut out = String::new();
    if c.total() == 0 {
        return out;
    }
    let _ = writeln!(out, "injected faults ({} total):", c.total());
    for (name, v) in [
        ("feedback dropped", c.feedback_dropped),
        ("feedback corrupted", c.feedback_corrupted),
        ("corrupt + undecodable", c.feedback_corrupt_lost),
        ("feedback delayed", c.feedback_delayed),
        ("feedback reordered", c.feedback_reordered),
        ("data frames lost", c.data_frames_lost),
        ("link-flap deferrals", c.link_flap_deferrals),
        ("PAUSE storms", c.pause_storms),
    ] {
        if v > 0 {
            let _ = writeln!(out, "  {name}: {v}");
        }
    }
    out
}

/// Resolves `--engine` / `--hybrid-guard` for a packet-level command
/// into an optional [`HybridSpec`] (`None` = the pure packet engine).
/// `--hybrid-guard` without `--engine hybrid` is a usage error.
fn hybrid_spec_from(flags: &Flags, p: &bcn::BcnParams) -> Result<Option<HybridSpec>, CliError> {
    match sim_engine_choice(flags)? {
        SimEngine::Hybrid => {
            Ok(Some(HybridSpec { params: p.clone(), guards: hybrid_guards_from(flags)? }))
        }
        SimEngine::Packet => {
            if flags.get("hybrid-guard").is_some() {
                return Err(CliError::Usage(
                    "--hybrid-guard only applies with --engine hybrid".into(),
                ));
            }
            Ok(None)
        }
    }
}

/// Renders the hybrid epoch accounting. Empty when no epoch committed,
/// so an `always-packet` (or never-quiescent) run prints byte-identically
/// to the pure packet engine.
fn render_hybrid_stats(stats: &HybridStats) -> String {
    if stats.epochs == 0 {
        return String::new();
    }
    let total = stats.ff_ns + stats.packet_ns;
    #[allow(clippy::cast_precision_loss)]
    let frac = if total > 0 { stats.ff_ns as f64 / total as f64 } else { 0.0 };
    format!(
        "hybrid engine: {} epoch(s) fast-forwarded ({} reseeds), {:.1}% of simulated time \
         analytic\n",
        stats.epochs,
        stats.reseeds,
        frac * 100.0
    )
}

/// Parses `--faults` for a single-run command, where `panic-seed` has no
/// meaning.
fn single_run_faults(flags: &Flags) -> Result<dcesim::faults::FaultConfig, CliError> {
    let (faults, panic_seeds) = faults_from(flags)?;
    if !panic_seeds.is_empty() {
        return Err(CliError::Usage("--faults panic-seed only applies to `batch`".into()));
    }
    Ok(faults)
}

/// `dcebcn analyze`: classification + criteria + transient metrics.
///
/// # Errors
///
/// Propagates flag and validation failures.
pub fn analyze(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    flags.ensure_known(&with_param_flags(&[]))?;
    let p = params_from(&flags)?;

    let mut out = String::new();
    let analysis = classify_params(&p);
    let _ = writeln!(out, "case:           {}", analysis.case);
    let _ = writeln!(
        out,
        "region shapes:  increase = {}, decrease = {}",
        analysis.increase, analysis.decrease
    );
    let _ = writeln!(
        out,
        "thresholds:     a = {:.4e} vs a* = {:.4e}; b = {:.4e} vs b* = {:.4e}",
        p.a(),
        analysis.a_threshold,
        p.b(),
        analysis.b_threshold
    );
    let _ = writeln!(
        out,
        "linear baseline [Lu et al. 2006]: {}",
        if linear_baseline::analyze(&p).overall_stable {
            "stable (always; blind to B)"
        } else {
            "unstable"
        }
    );
    match criterion(&p) {
        StabilityVerdict::StronglyStable(j) => {
            let _ = writeln!(out, "strong stability: GUARANTEED ({j:?})");
        }
        StabilityVerdict::NotGuaranteed(reason) => {
            let _ = writeln!(out, "strong stability: NOT guaranteed — {reason}");
        }
    }
    let exact = exact_verdict(&p, 40);
    let _ = writeln!(
        out,
        "exact trace:    strongly stable = {}, q in [{:.4e}, {:.4e}] bits",
        exact.strongly_stable,
        p.q0 + exact.min_x,
        p.q0 + exact.max_x
    );
    let m = transient::analyze(&p);
    let _ = writeln!(
        out,
        "transients:     overshoot = {:.1}% of q0, round = {} s, rho = {}, settle(5%) = {} s",
        m.overshoot_ratio * 100.0,
        m.round_period.map_or("-".into(), |v| format!("{v:.5}")),
        m.rho.map_or("-".into(), |v| format!("{v:.5}")),
        m.settling_time.map_or("-".into(), |v| format!("{v:.3}")),
    );
    Ok(out)
}

/// `dcebcn buffer`: Theorem 1 vs the exact requirement.
///
/// # Errors
///
/// Propagates flag and validation failures.
pub fn buffer(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    flags.ensure_known(&with_param_flags(&[]))?;
    let p = params_from(&flags)?;
    let exact = exact_verdict(&p, 40);
    let exact_need = p.q0 + exact.max_x;
    let thm = theorem1_required_buffer(&p);
    let mut out = String::new();
    let _ = writeln!(out, "configured buffer:        {:.4e} bits", p.buffer);
    let _ = writeln!(out, "Theorem 1 requires:       {thm:.4e} bits");
    let _ = writeln!(out, "exact trajectory needs:   {exact_need:.4e} bits");
    let _ = writeln!(
        out,
        "Theorem 1 verdict:        {}",
        if theorem1_holds(&p) { "buffer sufficient" } else { "buffer INSUFFICIENT" }
    );
    let _ = writeln!(
        out,
        "conservatism:             Theorem 1 asks {:.2}% above the exact need",
        (thm / exact_need - 1.0) * 100.0
    );
    Ok(out)
}

/// `dcebcn simulate`: integrate the switched fluid model; optional CSV.
///
/// # Errors
///
/// Propagates flag, validation, integration, and I/O failures.
pub fn simulate(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    flags.ensure_known(&with_param_flags(&[
        "t-end",
        "out",
        "nonlinear",
        "engine",
        "hybrid-guard",
    ]))?;
    let p = params_from(&flags)?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.01);
    if t_end <= 0.0 {
        return Err(CliError::Usage("--t-end must be positive".into()));
    }
    if matches!(flags.get("engine"), Some("hybrid")) {
        if flags.get_bool("nonlinear") {
            return Err(CliError::Usage(
                "--nonlinear only applies to the fluid integrators (the hybrid engine's packet \
                 stretches are the nonlinear reality)"
                    .into(),
            ));
        }
        return simulate_hybrid(&flags, &p, t_end);
    }
    if flags.get("hybrid-guard").is_some() {
        return Err(CliError::Usage("--hybrid-guard only applies with --engine hybrid".into()));
    }
    let sys = if flags.get_bool("nonlinear") {
        BcnFluid::new(p.clone())
    } else {
        BcnFluid::linearized(p.clone())
    };
    // The engine choice is honoured for linearised runs; nonlinear and
    // telemetry-instrumented runs fall back to DOPRI5 inside the library.
    let opts = FluidOptions::default()
        .with_t_end(t_end)
        .with_record_dt(t_end / 2000.0)
        .with_engine(engine_choice(&flags)?);
    let level = telemetry_level(&flags, TelemetryLevel::Off)?;
    let mut tel = Telemetry::new(level);
    let run = fluid_trajectory_telemetry(&sys, p.initial_point(), &opts, Some(&mut tel))
        .map_err(CliError::Solver)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "integrated {t_end} s: {} region switches, q in [{:.4e}, {:.4e}] bits",
        run.switch_count(),
        p.q0 + run.solution.min_component(0),
        p.q0 + run.solution.max_component(0),
    );
    if let Some(path) = flags.get("out") {
        let mut csv = Csv::new(&["t", "q_bits", "aggregate_rate"]);
        for (t, z) in run.solution.times().iter().zip(run.solution.states()) {
            csv.row(&[*t, z[0] + p.q0, z[1] + p.capacity]);
        }
        csv.save(path)?;
        let _ = writeln!(out, "wrote {path} ({} samples)", run.solution.len());
    }
    if level.enabled() {
        out.push_str(&render_summary(&tel));
    }
    Ok(out)
}

/// `dcebcn simulate --engine hybrid`: the epoch-switching co-simulator
/// on the fluid calibration of the flags, writing the same
/// `t,q_bits,aggregate_rate` CSV schema as the fluid engines.
fn simulate_hybrid(flags: &Flags, p: &BcnParams, t_end: f64) -> Result<String, CliError> {
    let guards = hybrid_guards_from(flags)?;
    let cfg = SimConfig::from_fluid(p, 8_000.0, Duration::from_secs(2e-6), t_end);
    cfg.validate()?;
    let spec = HybridSpec { params: p.clone(), guards };
    spec.validate_for(&cfg)?;
    let level = telemetry_level(flags, TelemetryLevel::Off)?;
    let report = HybridSim::new(spec.params, cfg, spec.guards)
        .with_telemetry_sink(Telemetry::new(level))
        .run();
    let m = &report.sim.metrics;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "co-simulated {t_end} s: q in [{:.4e}, {:.4e}] bits, {} frames delivered",
        m.queue.min_after(0.0),
        m.queue.max(),
        m.delivered_frames,
    );
    out.push_str(&render_hybrid_stats(&report.stats));
    if let Some(path) = flags.get("out") {
        let mut csv = Csv::new(&["t", "q_bits", "aggregate_rate"]);
        for ((t, q), w) in
            m.queue.times().iter().zip(m.queue.values()).zip(m.aggregate_rate.values())
        {
            csv.row(&[*t, *q, *w]);
        }
        csv.save(path)?;
        let _ = writeln!(out, "wrote {path} ({} samples)", m.queue.len());
    }
    if level.enabled() {
        if let Some(tel) = &report.sim.telemetry {
            out.push_str(&render_summary(tel));
        }
    }
    Ok(out)
}

/// `dcebcn atlas`: the (Gi, Gd) criterion atlas as CSV + summary.
///
/// # Errors
///
/// Propagates flag, validation, and I/O failures.
pub fn atlas(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    flags.ensure_known(&with_param_flags(&["grid", "out"]))?;
    let base = params_from(&flags)?;
    let grid = flags.get_usize("grid")?.unwrap_or(9);
    if grid < 2 {
        return Err(CliError::Usage("--grid must be at least 2".into()));
    }
    let mut csv = Csv::new(&["gi", "gd", "criterion", "theorem1", "exact"]);
    let mut granted = 0usize;
    let mut exact_ok = 0usize;
    // The grid parameterisations, in row-major output order; the exact
    // switched-trajectory verdict (the expensive cell) fans out across
    // the configured worker count, the cheap closed-form criteria stay
    // inline.
    let points: Vec<BcnParams> = (0..grid * grid)
        .map(|idx| {
            let (i, j) = (idx / grid, idx % grid);
            let gi = base.gi * 0.05 * 400.0_f64.powf(i as f64 / (grid - 1) as f64);
            let gd = (base.gd * 0.05 * 400.0_f64.powf(j as f64 / (grid - 1) as f64)).min(1.0);
            base.clone().with_gi(gi).with_gd(gd)
        })
        .collect();
    let verdicts = exact_verdicts(&points, 40);
    for (p, v) in points.iter().zip(&verdicts) {
        let c = criterion(p).is_guaranteed();
        let t = theorem1_holds(p);
        let e = v.strongly_stable;
        granted += usize::from(c);
        exact_ok += usize::from(e);
        csv.row(&[
            p.gi,
            p.gd,
            f64::from(u8::from(c)),
            f64::from(u8::from(t)),
            f64::from(u8::from(e)),
        ]);
    }
    let mut out = String::new();
    let total = grid * grid;
    let _ = writeln!(
        out,
        "atlas {grid}x{grid}: {exact_ok}/{total} strongly stable, criterion certifies {granted}"
    );
    if let Some(path) = flags.get("out") {
        csv.save(path)?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

/// `dcebcn packet`: packet-level run summary.
///
/// # Errors
///
/// Propagates flag and validation failures.
pub fn packet(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    flags.ensure_known(&with_param_flags(&[
        "t-end",
        "frame-bits",
        "faults",
        "scheduler",
        "engine",
        "hybrid-guard",
        "topo",
        "traffic",
    ]))?;
    if let Some((topo, traffic)) = topo_request(&flags)? {
        return packet_net(&flags, &topo, &traffic);
    }
    let p = params_from(&flags)?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.2);
    let frame_bits = flags.get_f64("frame-bits")?.unwrap_or(8_000.0);
    if t_end <= 0.0 || frame_bits <= 0.0 {
        return Err(CliError::Usage("--t-end and --frame-bits must be positive".into()));
    }
    let level = telemetry_level(&flags, TelemetryLevel::Off)?;
    let hybrid = hybrid_spec_from(&flags, &p)?;
    let mut cfg = SimConfig::from_fluid(&p, frame_bits, Duration::from_secs(2e-6), t_end);
    cfg.scheduler = scheduler_choice(&flags)?;
    cfg.faults = single_run_faults(&flags)?;
    cfg.validate()?;
    let (report, hybrid_stats) = match hybrid {
        Some(spec) => {
            spec.validate_for(&cfg)?;
            let run = HybridSim::new(spec.params, cfg, spec.guards)
                .with_telemetry_sink(Telemetry::new(level))
                .run();
            (run.sim, Some(run.stats))
        }
        None => (Simulation::with_telemetry(cfg, Telemetry::new(level)).run(), None),
    };
    let m = &report.metrics;
    let mut out = String::new();
    let _ = writeln!(out, "packet-level run over {t_end} s ({} flows):", p.n_flows);
    let _ = writeln!(out, "  delivered frames:   {}", m.delivered_frames);
    let _ = writeln!(out, "  dropped frames:     {}", m.dropped_frames);
    let _ = writeln!(out, "  utilisation:        {:.4}", m.utilization(p.capacity, t_end));
    let _ = writeln!(out, "  fairness (bytes):   {:.4}", m.fairness());
    let _ = writeln!(out, "  max queue:          {:.4e} bits", m.queue.max());
    let _ = writeln!(
        out,
        "  queueing delay:     p50 {:.1} us, p99 {:.1} us",
        m.queueing_delay.percentile(0.5) * 1e6,
        m.queueing_delay.percentile(0.99) * 1e6
    );
    let _ = writeln!(out, "  feedback messages:  {}", m.feedback_messages);
    let _ = writeln!(out, "  PAUSE events:       {}", m.pause_events);
    if let Some(stats) = &hybrid_stats {
        out.push_str(&render_hybrid_stats(stats));
    }
    out.push_str(&render_fault_counts(&m.faults));
    if let Some(tel) = &report.telemetry {
        if tel.enabled() {
            out.push_str(&render_summary(tel));
        }
    }
    Ok(out)
}

/// With `--topo` every flag that only makes sense on the
/// single-bottleneck dumbbell is a typed usage error, never silently
/// ignored (`--frame-bits` moves into the spec's `frame=` key).
fn reject_sim_only_flags(flags: &Flags, extra: &[&str]) -> Result<(), CliError> {
    for f in PARAM_FLAGS.iter().chain(extra) {
        if flags.get(f).is_some() {
            if *f == "frame-bits" {
                return Err(CliError::Usage(
                    "--frame-bits does not apply to --topo runs (use frame=... in the spec)".into(),
                ));
            }
            return Err(CliError::Usage(format!("--{f} does not apply to --topo runs")));
        }
    }
    Ok(())
}

/// Deterministic multi-hop run summary — byte-identical across
/// schedulers and worker counts (the CI smoke byte-diffs it).
fn net_summary(report: &NetReport, t_end: f64) -> String {
    let delivered: f64 = report.flows.iter().map(|f| f.delivered_bits).sum();
    let dropped: u64 = report.flows.iter().map(|f| f.dropped_frames).sum();
    let pauses: u64 = report.pause_counts.iter().sum();
    let max_q =
        report.switch_queues.iter().map(dcesim::metrics::TimeSeries::max).fold(0.0_f64, f64::max);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  delivered:          {delivered:.6e} bits ({:.4e} bit/s aggregate)",
        delivered / t_end
    );
    let _ = writeln!(out, "  dropped frames:     {dropped}");
    let _ = writeln!(out, "  feedback messages:  {}", report.feedback_messages);
    let _ = writeln!(out, "  PAUSE events:       {pauses}");
    let _ = writeln!(out, "  max switch queue:   {max_q:.4e} bits");
    out.push_str(&render_fault_counts(&report.faults));
    out
}

/// `dcebcn packet --topo ...`: one deterministic run of a compiled
/// fabric under the multi-hop engine.
fn packet_net(flags: &Flags, topo: &TopoSpec, traffic: &Traffic) -> Result<String, CliError> {
    reject_sim_only_flags(flags, &["engine", "hybrid-guard", "frame-bits"])?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.005);
    if t_end <= 0.0 {
        return Err(CliError::Usage("--t-end must be positive".into()));
    }
    let level = telemetry_level(flags, TelemetryLevel::Off)?;
    let mut cfg = compile(topo, traffic, t_end)?;
    cfg.scheduler = scheduler_choice(flags)?;
    cfg.faults = single_run_faults(flags)?;
    let (hosts, switches, n_flows) = (cfg.hosts, cfg.switches.len(), cfg.flows.len());
    let report = NetSim::try_new(cfg)?.with_telemetry_sink(Telemetry::new(level)).run();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fabric run over {t_end} s: {hosts} hosts, {switches} switches, {n_flows} flows"
    );
    out.push_str(&net_summary(&report, t_end));
    if let Some(tel) = &report.telemetry {
        if tel.enabled() {
            out.push_str(&render_summary(tel));
        }
    }
    Ok(out)
}

/// `dcebcn batch`: multi-seed packet-level batch — the base scenario
/// with per-seed deterministic workload jitter, run in parallel across
/// the configured worker count, with the per-seed telemetry shards
/// merged into one aggregate.
///
/// `--checkpoint-dir` persists every finished seed; `--resume` skips
/// seeds the checkpoint already holds and merges a report bit-identical
/// to an uninterrupted run. `--max-seed-events` / `--seed-deadline-ms`
/// arm the watchdog, `--seed-retries` re-runs failed (never timed-out)
/// seeds with exponential backoff.
///
/// # Errors
///
/// Propagates flag, validation, and I/O failures. Under `--fail-fast`,
/// failed seeds raise [`CliError::Batch`] (exit 9) and — when none
/// failed — watchdog-demoted seeds raise [`CliError::Timeout`]
/// (exit 10).
pub fn batch(args: &[String]) -> Result<String, CliError> {
    let flags = Flags::parse(args)?;
    flags.ensure_known(&with_param_flags(&[
        "t-end",
        "frame-bits",
        "seeds",
        "start-jitter",
        "rate-jitter",
        "out",
        "faults",
        "fail-fast",
        "scheduler",
        "postmortem-dir",
        "checkpoint-dir",
        "resume",
        "max-seed-events",
        "seed-deadline-ms",
        "seed-retries",
        "retry-backoff-ms",
        "engine",
        "hybrid-guard",
        "topo",
        "traffic",
    ]))?;
    if let Some((topo, traffic)) = topo_request(&flags)? {
        return batch_net(&flags, &topo, &traffic);
    }
    let p = params_from(&flags)?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.05);
    let frame_bits = flags.get_f64("frame-bits")?.unwrap_or(8_000.0);
    if t_end <= 0.0 || frame_bits <= 0.0 {
        return Err(CliError::Usage("--t-end and --frame-bits must be positive".into()));
    }
    let n_seeds = flags.get_usize("seeds")?.unwrap_or(8);
    if n_seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }
    let level = telemetry_level(&flags, TelemetryLevel::Off)?;
    let (faults, panic_seeds) = faults_from(&flags)?;
    let hybrid = hybrid_spec_from(&flags, &p)?;
    let mut base = SimConfig::from_fluid(&p, frame_bits, Duration::from_secs(2e-6), t_end);
    base.scheduler = scheduler_choice(&flags)?;
    base.faults = faults;
    base.validate()?;
    if let Some(spec) = &hybrid {
        // Fail the whole command up front on bad knobs rather than
        // quarantining every seed with the same cause.
        spec.validate_for(&base)?;
    }
    let mut cfg = BatchConfig::quick(base, n_seeds as u64);
    cfg.hybrid = hybrid;
    cfg.level = level;
    cfg.panic_seeds = panic_seeds;
    if let Some(v) = flags.get_f64("start-jitter")? {
        cfg.start_jitter_secs = v;
    }
    if let Some(v) = flags.get_f64("rate-jitter")? {
        cfg.rate_jitter_frac = v;
    }
    if let Some(v) = flags.get_usize("max-seed-events")? {
        if v == 0 {
            return Err(CliError::Usage("--max-seed-events must be positive".into()));
        }
        cfg.max_events_per_seed = Some(v as u64);
    }
    if let Some(v) = flags.get_usize("seed-deadline-ms")? {
        if v == 0 {
            return Err(CliError::Usage("--seed-deadline-ms must be positive".into()));
        }
        cfg.max_seed_wall_ms = Some(v as u64);
    }
    if let Some(v) = flags.get_usize("seed-retries")? {
        cfg.max_seed_retries = u32::try_from(v)
            .map_err(|_| CliError::Usage("--seed-retries is out of range".into()))?;
    }
    if let Some(v) = flags.get_usize("retry-backoff-ms")? {
        cfg.retry_backoff_ms = v as u64;
    }
    let resume = flags.get_bool("resume");
    let checkpoint_dir = flags.get("checkpoint-dir").map(ToString::to_string);
    if resume && checkpoint_dir.is_none() {
        return Err(CliError::Usage("--resume requires --checkpoint-dir".into()));
    }
    let mut report = match &checkpoint_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let ck = if resume {
                BatchCheckpoint::resume(dir, &cfg)
            } else {
                BatchCheckpoint::create(dir, &cfg)
            }
            .map_err(|e| CliError::Batch(e.to_string()))?;
            let restored = ck.restored_seeds().len() as u64;
            let mut report =
                run_batch_checkpointed(&cfg, &ck).map_err(|e| CliError::Batch(e.to_string()))?;
            // The runner never folds `resumed` into the merged report —
            // that would make a resumed run's artifacts differ from an
            // uninterrupted one. Only this process's rendering copy
            // learns how many seeds it skipped.
            report.supervisor.resumed = restored;
            report
        }
        None => run_batch(&cfg),
    };
    if let Some(tel) = report.telemetry.as_mut() {
        tel.batch_supervision(report.supervisor.resumed, 0, 0);
    }
    let postmortem_dir = flags.get("postmortem-dir").unwrap_or("results").to_string();

    let mut out = String::new();
    let _ = writeln!(
        out,
        "batch: {n_seeds} seeds x {t_end} s, start jitter {:.4e} s, rate jitter {:.1}%",
        cfg.start_jitter_secs,
        cfg.rate_jitter_frac * 100.0
    );
    let mut table = Table::new(&[
        "seed",
        "delivered",
        "dropped",
        "utilisation",
        "fairness",
        "max queue (bits)",
    ]);
    let mut csv =
        Csv::new(&["seed", "delivered", "dropped", "utilisation", "fairness", "max_queue_bits"]);
    let mut utils = Vec::new();
    let mut fault_totals = FaultCounts::default();
    for (seed, r) in report.completed() {
        let m = &r.metrics;
        let util = m.utilization(p.capacity, t_end);
        utils.push(util);
        fault_totals.merge(&m.faults);
        table.row(&[
            seed.to_string(),
            m.delivered_frames.to_string(),
            m.dropped_frames.to_string(),
            format!("{util:.4}"),
            format!("{:.4}", m.fairness()),
            format!("{:.4e}", m.queue.max()),
        ]);
        #[allow(clippy::cast_precision_loss)]
        csv.row(&[
            seed as f64,
            m.delivered_frames as f64,
            m.dropped_frames as f64,
            util,
            m.fairness(),
            m.queue.max(),
        ]);
    }
    let _ = write!(out, "{table}");
    let failures: Vec<(u64, String)> = report.failures().map(|(s, c)| (s, c.to_string())).collect();
    if !failures.is_empty() {
        let _ = writeln!(out, "quarantined {} of {n_seeds} seeds:", failures.len());
        for (seed, cause) in &failures {
            let _ = writeln!(out, "  seed {seed}: {cause}");
        }
    }
    let timed_out: Vec<(u64, u64)> = report.timed_out().collect();
    if !timed_out.is_empty() {
        let _ = writeln!(out, "watchdog demoted {} of {n_seeds} seeds:", timed_out.len());
        for (seed, events) in &timed_out {
            let _ = writeln!(out, "  seed {seed}: timed out after {events} events");
        }
    }
    // Crash flight recorder: each quarantined or watchdog-demoted seed
    // that salvaged a telemetry shard gets a postmortem dump — the trace
    // ring's last events, the open-span stack ("what was running"), the
    // failure cause, and the seeded configuration + fault plan needed by
    // `dcebcn replay`, as JSONL behind the same schema header the
    // `report` command checks.
    for (seed, cause, tel) in report.postmortems() {
        let Some(tel) = tel else { continue };
        let scfg = seeded_config(&cfg, seed);
        let panic_after = cfg.panic_seeds.contains(&seed).then_some(PANIC_AFTER_STEPS);
        let body =
            render_postmortem(seed, &cause, tel, &scfg, panic_after, cfg.max_events_per_seed);
        let path = format!("{postmortem_dir}/postmortem-{seed}.jsonl");
        std::fs::write(&path, &body).or_else(|_| {
            std::fs::create_dir_all(&postmortem_dir).and_then(|()| std::fs::write(&path, &body))
        })?;
        let _ = writeln!(out, "  wrote {path}");
    }
    let sup = report.supervisor;
    if sup.resumed + sup.retried + sup.timed_out > 0 {
        let _ = writeln!(
            out,
            "supervision: {} seed(s) restored from checkpoint, {} retrie(s), {} timed out",
            sup.resumed, sup.retried, sup.timed_out
        );
    }
    if !utils.is_empty() {
        let (lo, hi) = utils
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &u| (lo.min(u), hi.max(u)));
        let _ = writeln!(out, "utilisation spread across seeds: [{lo:.4}, {hi:.4}]");
    }
    out.push_str(&render_fault_counts(&fault_totals));
    if let Some(path) = flags.get("out") {
        csv.save(path)?;
        let _ = writeln!(out, "wrote {path}");
    }
    if let Some(tel) = &report.telemetry {
        out.push_str(&render_summary(tel));
    }
    if flags.get_bool("fail-fast") {
        if !failures.is_empty() {
            let (seed, cause) = &failures[0];
            return Err(CliError::Batch(format!(
                "{} of {n_seeds} seeds failed (first: seed {seed}: {cause})",
                failures.len()
            )));
        }
        if !timed_out.is_empty() {
            let (seed, events) = timed_out[0];
            return Err(CliError::Timeout(format!(
                "{} of {n_seeds} seeds hit the watchdog (first: seed {seed} after {events} events)",
                timed_out.len()
            )));
        }
    }
    Ok(out)
}

/// `dcebcn batch --topo ...`: a multi-seed fabric batch under the
/// multi-hop engine — per-seed rate jitter, checkpoint/resume, fault
/// injection, and the watchdog, but no retry ladder (the engine is
/// deterministic, so a failed seed fails identically on every retry)
/// and no postmortem dumps yet.
fn batch_net(flags: &Flags, topo: &TopoSpec, traffic: &Traffic) -> Result<String, CliError> {
    reject_sim_only_flags(
        flags,
        &[
            "engine",
            "hybrid-guard",
            "frame-bits",
            "start-jitter",
            "seed-retries",
            "retry-backoff-ms",
            "postmortem-dir",
        ],
    )?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.005);
    if t_end <= 0.0 {
        return Err(CliError::Usage("--t-end must be positive".into()));
    }
    let n_seeds = flags.get_usize("seeds")?.unwrap_or(8);
    if n_seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }
    let level = telemetry_level(flags, TelemetryLevel::Off)?;
    let (faults, panic_seeds) = faults_from(flags)?;
    let mut base = compile(topo, traffic, t_end)?;
    base.scheduler = scheduler_choice(flags)?;
    base.faults = faults;
    let mut cfg = NetBatchConfig::quick(base, n_seeds as u64);
    cfg.level = level;
    cfg.panic_seeds = panic_seeds;
    if let Some(v) = flags.get_f64("rate-jitter")? {
        cfg.rate_jitter_frac = v;
    }
    if let Some(v) = flags.get_usize("max-seed-events")? {
        if v == 0 {
            return Err(CliError::Usage("--max-seed-events must be positive".into()));
        }
        cfg.max_events_per_seed = Some(v as u64);
    }
    if let Some(v) = flags.get_usize("seed-deadline-ms")? {
        if v == 0 {
            return Err(CliError::Usage("--seed-deadline-ms must be positive".into()));
        }
        cfg.max_seed_wall_ms = Some(v as u64);
    }
    let resume = flags.get_bool("resume");
    let checkpoint_dir = flags.get("checkpoint-dir").map(ToString::to_string);
    if resume && checkpoint_dir.is_none() {
        return Err(CliError::Usage("--resume requires --checkpoint-dir".into()));
    }
    let mut report = match &checkpoint_dir {
        Some(dir) => {
            let dir = std::path::Path::new(dir);
            let ck = if resume {
                NetBatchCheckpoint::resume(dir, &cfg)
            } else {
                NetBatchCheckpoint::create(dir, &cfg)
            }
            .map_err(|e| CliError::Batch(e.to_string()))?;
            let restored = ck.restored_seeds().len() as u64;
            let mut report = run_net_batch_checkpointed(&cfg, &ck)
                .map_err(|e| CliError::Batch(e.to_string()))?;
            // As in the single-bottleneck runner: only the rendering
            // copy learns how many seeds the checkpoint restored.
            report.supervisor.resumed = restored;
            report
        }
        None => run_net_batch(&cfg),
    };
    if let Some(tel) = report.telemetry.as_mut() {
        tel.batch_supervision(report.supervisor.resumed, 0, 0);
    }
    let (hosts, switches, n_flows) =
        (cfg.base.hosts, cfg.base.switches.len(), cfg.base.flows.len());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fabric batch: {n_seeds} seeds x {t_end} s, rate jitter {:.1}%, {hosts} hosts / \
         {switches} switches / {n_flows} flows",
        cfg.rate_jitter_frac * 100.0
    );
    let mut table = Table::new(&[
        "seed",
        "delivered (bits)",
        "dropped",
        "aggregate (bit/s)",
        "PAUSEs",
        "max queue (bits)",
    ]);
    let mut csv = Csv::new(&[
        "seed",
        "delivered_bits",
        "dropped",
        "aggregate_bps",
        "pauses",
        "max_queue_bits",
    ]);
    for (seed, r) in report.completed() {
        let delivered: f64 = r.flows.iter().map(|f| f.delivered_bits).sum();
        let dropped: u64 = r.flows.iter().map(|f| f.dropped_frames).sum();
        let pauses: u64 = r.pause_counts.iter().sum();
        let max_q =
            r.switch_queues.iter().map(dcesim::metrics::TimeSeries::max).fold(0.0_f64, f64::max);
        table.row(&[
            seed.to_string(),
            format!("{delivered:.6e}"),
            dropped.to_string(),
            format!("{:.4e}", delivered / t_end),
            pauses.to_string(),
            format!("{max_q:.4e}"),
        ]);
        #[allow(clippy::cast_precision_loss)]
        csv.row(&[seed as f64, delivered, dropped as f64, delivered / t_end, pauses as f64, max_q]);
    }
    let _ = write!(out, "{table}");
    let failures: Vec<(u64, String)> = report.failures().map(|(s, c)| (s, c.to_string())).collect();
    if !failures.is_empty() {
        let _ = writeln!(out, "quarantined {} of {n_seeds} seeds:", failures.len());
        for (seed, cause) in &failures {
            let _ = writeln!(out, "  seed {seed}: {cause}");
        }
    }
    let timed_out: Vec<(u64, u64)> = report.timed_out().collect();
    if !timed_out.is_empty() {
        let _ = writeln!(out, "watchdog demoted {} of {n_seeds} seeds:", timed_out.len());
        for (seed, events) in &timed_out {
            let _ = writeln!(out, "  seed {seed}: timed out after {events} events");
        }
    }
    let sup = report.supervisor;
    if sup.resumed + sup.timed_out > 0 {
        let _ = writeln!(
            out,
            "supervision: {} seed(s) restored from checkpoint, {} timed out",
            sup.resumed, sup.timed_out
        );
    }
    if let Some(path) = flags.get("out") {
        csv.save(path)?;
        let _ = writeln!(out, "wrote {path}");
    }
    if let Some(tel) = &report.telemetry {
        out.push_str(&render_summary(tel));
    }
    if flags.get_bool("fail-fast") {
        if !failures.is_empty() {
            let (seed, cause) = &failures[0];
            return Err(CliError::Batch(format!(
                "{} of {n_seeds} seeds failed (first: seed {seed}: {cause})",
                failures.len()
            )));
        }
        if !timed_out.is_empty() {
            let (seed, events) = timed_out[0];
            return Err(CliError::Timeout(format!(
                "{} of {n_seeds} seeds hit the watchdog (first: seed {seed} after {events} events)",
                timed_out.len()
            )));
        }
    }
    Ok(out)
}

/// Renders one quarantined seed's flight recorder as JSONL: the schema
/// header, a `postmortem` record (seed + cause + seeded-config digest),
/// one `open_span` record per still-open span (innermost last), the
/// trace ring's events, and finally the replay context — the seeded
/// simulator configuration, its fault plan, and the failure triggers —
/// so `dcebcn replay` can re-run the seed from the dump alone.
fn render_postmortem(
    seed: u64,
    cause: &str,
    tel: &Telemetry,
    sim_cfg: &SimConfig,
    panic_after: Option<u64>,
    max_events: Option<u64>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{}", telemetry::schema_header());
    let _ = writeln!(
        out,
        r#"{{"type":"postmortem","seed":{seed},"cause":"{}","events":{},"open_spans":{},"config_digest":{}}}"#,
        report_pipeline::json_escape(cause),
        tel.trace.len(),
        tel.open_spans().len(),
        sim_config_digest(sim_cfg)
    );
    for s in tel.open_spans() {
        let _ = writeln!(
            out,
            r#"{{"type":"open_span","id":{},"parent":{},"kind":"{}","entity":{},"t_begin":{}}}"#,
            s.id,
            s.parent,
            s.kind.name(),
            s.entity,
            s.t_begin
        );
    }
    for e in tel.trace.iter() {
        let _ = writeln!(out, "{}", telemetry::event_to_jsonl(e));
    }
    encode_replay_context(seed, panic_after, max_events, sim_cfg, &mut out);
    out
}

/// `dcebcn replay <postmortem-<seed>.jsonl>`: reconstruct the seeded
/// configuration and fault plan embedded in a postmortem dump, re-run
/// that seed deterministically, and check the recorded failure
/// reproduces byte-for-byte.
///
/// # Errors
///
/// [`CliError::Analysis`] when the dump cannot be decoded,
/// [`CliError::Replay`] when the re-run diverges from the recorded
/// cause (exit code 11), plus the usual flag and I/O failures.
pub fn replay(args: &[String]) -> Result<String, CliError> {
    let Some((path, rest)) = args.split_first() else {
        return Err(CliError::Usage(
            "replay expects a postmortem file: dcebcn replay <postmortem-<seed>.jsonl>".into(),
        ));
    };
    if path.starts_with('-') {
        return Err(CliError::Usage(format!(
            "replay expects a postmortem file path before flags, got `{path}`"
        )));
    }
    let flags = Flags::parse(rest)?;
    flags.ensure_known(&["telemetry", "threads"])?;
    let text = std::fs::read_to_string(path)?;
    let spec = replay_spec_from_postmortem(&text)
        .map_err(|e| CliError::Analysis(format!("{path}: {e}")))?;
    match dcesim::batch::replay(&spec) {
        Ok(cause) => Ok(format!(
            "replayed seed {}: recorded failure reproduced\n  cause: {cause}\n",
            spec.seed
        )),
        Err(e) => Err(CliError::Replay(format!("seed {}: {e}", spec.seed))),
    }
}

/// `dcebcn report <scenario>`: run an instrumented scenario (or decode a
/// JSONL trace with `--from`) and write the full report pipeline — a
/// JSON summary, queue/rate SVG timelines with causal span bands, and a
/// Prometheus-style metrics export.
///
/// Scenarios: `thm1`, `limit-cycle`, `packet` (as in `trace`), plus
/// `victim` — the paper-Introduction 4-culprit multi-hop scenario whose
/// PAUSE episodes render as span bands on the switch-queue lanes.
///
/// # Errors
///
/// Propagates flag, validation, integration, and I/O failures.
pub fn report(args: &[String]) -> Result<String, CliError> {
    let (scenario, rest) = match args.split_first() {
        Some((s, rest)) if !s.starts_with("--") => (s.as_str(), rest),
        _ => ("thm1", args),
    };
    let flags = Flags::parse(rest)?;
    flags.ensure_known(&with_param_flags(&["t-end", "out-dir", "from", "frame-bits"]))?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.01);
    if t_end <= 0.0 {
        return Err(CliError::Usage("--t-end must be positive".into()));
    }
    let out_dir = flags.get("out-dir").unwrap_or("results/report").to_string();

    let mut tel = Telemetry::new(TelemetryLevel::Full);
    let label;
    if let Some(path) = flags.get("from") {
        // Decode a previously written trace; the schema header guards
        // against stale (pre-span) files.
        let body = std::fs::read_to_string(path)?;
        let mut lines = body.lines();
        let first =
            lines.next().ok_or_else(|| CliError::Analysis(format!("{path}: empty trace file")))?;
        telemetry::check_schema_header(first)
            .map_err(|e| CliError::Analysis(format!("{path}: {e}")))?;
        for (i, line) in lines.enumerate() {
            let ev = telemetry::event_from_jsonl(line)
                .map_err(|e| CliError::Analysis(format!("{path}:{}: {e}", i + 2)))?;
            tel.trace.push(ev);
        }
        label = format!("from:{path}");
    } else {
        label = scenario.to_string();
        match scenario {
            "thm1" | "limit-cycle" => {
                let mut p = params_from(&flags)?;
                if scenario == "thm1" && flags.get_f64("buffer")?.is_none() {
                    let required = theorem1_required_buffer(&p);
                    p = p.with_buffer(required);
                }
                let sys = BcnFluid::linearized(p.clone());
                let opts = FluidOptions::default().with_t_end(t_end).with_record_dt(t_end / 2000.0);
                fluid_trajectory_telemetry(&sys, p.initial_point(), &opts, Some(&mut tel))
                    .map_err(CliError::Solver)?;
                // Propagator-cache satellite: one closed-form pass over
                // the same system, bracketed by the process-global cache
                // counters, shows the cache's hit rate in the report.
                // (Saturating: other threads may touch the counters.)
                let c0 = bcn::propagate::cache_stats();
                let analytic = FluidOptions::default()
                    .with_t_end(t_end)
                    .with_record_dt(t_end / 2000.0)
                    .with_engine(bcn::simulate::Engine::Analytic);
                fluid_trajectory_telemetry(&sys, p.initial_point(), &analytic, None)
                    .map_err(CliError::Solver)?;
                let delta = bcn::propagate::cache_stats().delta_since(c0);
                tel.propagator_cache(delta.hits, delta.misses, delta.evictions);
            }
            "packet" => {
                let p = params_from(&flags)?;
                let frame_bits = flags.get_f64("frame-bits")?.unwrap_or(8_000.0);
                if frame_bits <= 0.0 {
                    return Err(CliError::Usage("--frame-bits must be positive".into()));
                }
                let cfg = SimConfig::from_fluid(&p, frame_bits, Duration::from_secs(2e-6), t_end);
                cfg.validate()?;
                let run = Simulation::with_telemetry(cfg, tel).run();
                tel = run.telemetry.unwrap_or_default();
            }
            "victim" => {
                let run = dcesim::net::NetSim::new(victim_scenario(t_end).0)
                    .with_telemetry_sink(tel)
                    .run();
                tel = run.telemetry.unwrap_or_default();
            }
            other => {
                return Err(CliError::Usage(format!(
                    "unknown report scenario `{other}`; expected thm1, limit-cycle, packet, or \
                     victim"
                )));
            }
        }
    }

    let art = report_pipeline::render(&tel, &label);
    std::fs::create_dir_all(&out_dir)?;
    let mut out = String::new();
    let _ = writeln!(out, "report for {label} ({} trace events):", tel.trace.len());
    for (name, body) in [
        ("report.json", &art.summary_json),
        ("timeline_queue.svg", &art.queue_svg),
        ("timeline_rate.svg", &art.rate_svg),
        ("metrics.prom", &art.prometheus),
    ] {
        let path = format!("{out_dir}/{name}");
        std::fs::write(&path, body)?;
        let _ = writeln!(out, "  wrote {path} ({} bytes)", body.len());
    }
    Ok(out)
}

/// `dcebcn query` — the batched stability-query engine as a stream
/// filter: JSONL questions in (`--in` or stdin), JSONL answers out
/// (`--out` or stdout), both streams opened by a schema-v2 header.
///
/// Queries are evaluated `--chunk` at a time through
/// [`bcn::query::QueryBatch`], so memory stays bounded on unbounded
/// input while each chunk still amortises propagator resolution across
/// its duplicate configurations. Answers stream out in input order;
/// with `--telemetry summary` the run's `query.*` counters and
/// propagator-cache traffic are reported (to the summary string, never
/// onto the answer stream).
///
/// # Errors
///
/// Returns [`CliError`] for malformed flags, a missing/stale schema
/// header, or I/O failures. An undecodable query line is skipped with
/// an inline `{"type":"error",...}` record in the answer stream; under
/// `--strict` it instead fails fast with its line number (the
/// pre-streaming behaviour, exit code 3).
pub fn query(args: &[String]) -> Result<String, CliError> {
    use std::io::{BufRead, Write as IoWrite};

    let flags = Flags::parse(args)?;
    flags.ensure_known(&["in", "out", "chunk", "strict", "telemetry", "threads"])?;
    let strict = flags.get_bool("strict");
    let level = telemetry_level(&flags, TelemetryLevel::Off)?;
    let chunk = flags.get_usize("chunk")?.unwrap_or(4096);
    if chunk == 0 {
        return Err(CliError::Usage("--chunk must be positive".into()));
    }
    let mut tel = Telemetry::new(level);

    let src_name = flags.get("in").unwrap_or("<stdin>").to_string();
    let reader: Box<dyn BufRead> = match flags.get("in") {
        Some(path) => Box::new(std::io::BufReader::new(std::fs::File::open(path)?)),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    let to_file = flags.get("out").is_some();
    let mut sink: Box<dyn IoWrite> = match flags.get("out") {
        Some(path) => Box::new(std::io::BufWriter::new(std::fs::File::create(path)?)),
        None => Box::new(std::io::stdout().lock()),
    };

    let mut lines = reader.lines();
    let first = lines
        .next()
        .transpose()?
        .ok_or_else(|| CliError::Analysis(format!("{src_name}: empty query stream")))?;
    telemetry::check_schema_header(&first)
        .map_err(|e| CliError::Analysis(format!("{src_name}: {e}")))?;
    sink.write_all(telemetry::schema_header().as_bytes())?;
    sink.write_all(b"\n")?;

    let cache0 = bcn::propagate::cache_stats();
    let started = std::time::Instant::now();
    let mut total: u64 = 0;
    let mut batches: u64 = 0;
    let mut lineno = 1usize; // the schema header was line 1
    let mut skipped: u64 = 0;
    let mut queries: Vec<bcn::query::StabilityQuery> = Vec::with_capacity(chunk);
    // One entry per non-empty input line of the chunk, in input order:
    // `None` is a slot for the next answer, `Some(record)` is an error
    // record standing in for a line that failed to decode.
    let mut slots: Vec<Option<String>> = Vec::with_capacity(chunk);
    let mut done = false;
    while !done {
        queries.clear();
        slots.clear();
        while queries.len() < chunk {
            let Some(line) = lines.next() else {
                done = true;
                break;
            };
            let line = line?;
            lineno += 1;
            if line.trim().is_empty() {
                continue;
            }
            match bcn::query::query_from_jsonl(&line) {
                Ok(q) => {
                    queries.push(q);
                    slots.push(None);
                }
                Err(e) if strict => {
                    return Err(CliError::Analysis(format!("{src_name}:{lineno}: {e}")));
                }
                Err(e) => {
                    // Streaming contract: one bad line costs one error
                    // record in the output, never the whole run.
                    skipped += 1;
                    slots.push(Some(format!(
                        r#"{{"type":"error","line":{lineno},"cause":"{}"}}"#,
                        report_pipeline::json_escape(&e.to_string())
                    )));
                }
            }
        }
        if slots.is_empty() {
            break;
        }
        let answers = if queries.is_empty() {
            Vec::new()
        } else {
            let batch = bcn::query::QueryBatch::new(&queries);
            let t0 = std::time::Instant::now();
            let answers = batch.evaluate();
            let secs = t0.elapsed().as_secs_f64();
            batches += 1;
            total += answers.len() as u64;
            let qps = if secs > 0.0 { answers.len() as f64 / secs } else { 0.0 };
            tel.query_stats(1, answers.len() as u64, qps);
            answers
        };
        let mut next_answer = answers.iter();
        for slot in &slots {
            match slot {
                Some(record) => {
                    sink.write_all(record.as_bytes())?;
                }
                None => {
                    let a = next_answer.next().expect("one answer per query slot");
                    sink.write_all(bcn::query::answer_to_jsonl(a).as_bytes())?;
                }
            }
            sink.write_all(b"\n")?;
        }
    }
    sink.flush()?;
    let delta = bcn::propagate::cache_stats().delta_since(cache0);
    tel.propagator_cache(delta.hits, delta.misses, delta.evictions);

    if !to_file {
        // Stdout carried the answer stream; keep it pure JSONL.
        return Ok(String::new());
    }
    let wall = started.elapsed().as_secs_f64();
    let mut out = String::new();
    let _ =
        writeln!(out, "answered {total} queries in {batches} batch(es), {:.3} ms wall", wall * 1e3);
    if skipped > 0 {
        let _ = writeln!(
            out,
            "skipped {skipped} malformed line(s) (error records inline; --strict to fail fast)"
        );
    }
    out.push_str(&render_summary(&tel));
    Ok(out)
}

/// The 4-culprit victim scenario the report renders: PAUSE enabled so
/// the episodes show up as span bands, BCN installed so the victim is
/// shielded — calibrated like the packet-engine tests (1 Gbit/s trunk,
/// 8 kbit frames).
fn victim_scenario(t_end: f64) -> (dcesim::net::NetConfig, usize) {
    use dcesim::cp::CpConfig;
    use dcesim::frame::CpId;
    use dcesim::net::{victim_topology, PauseConfig};
    use dcesim::rp::RpConfig;
    let trunk = 1.0e9;
    let frame = 8_000.0;
    let q0 = 10.0 * frame;
    let cp = CpConfig {
        cpid: CpId(2),
        q0_bits: q0,
        qsc_bits: 50.0 * frame,
        w: 2.0 / frame * 100.0,
        sample_every: 5,
        fb_quant: None,
        gate_positive: false,
    };
    let rp = RpConfig {
        gi: 0.5,
        gd: 1.0 / 512.0,
        ru: 1.0e4,
        gain_scale: frame * 4.0 / (0.2 * trunk),
        r_min: trunk * 1e-6,
        r_max: trunk,
    };
    let pause = PauseConfig {
        enabled: true,
        hold: Duration::from_secs(40.0 * frame / trunk),
        per_priority: false,
    };
    victim_topology(4, trunk, frame, Duration::from_secs(1e-6), t_end, pause, Some((cp, rp)))
}

/// `dcebcn trace <scenario>`: run an instrumented scenario, print the
/// telemetry summary, and optionally dump the event trace as JSONL.
///
/// Scenarios:
///
/// * `thm1` (default) — the paper's worked example with the buffer set
///   to exactly what Theorem 1 requires, integrated as the switched
///   fluid model;
/// * `limit-cycle` — the worked example with its original (too small)
///   buffer, which sustains the PAUSE-driven oscillation;
/// * `packet` — the packet-level simulator on the same parameters.
///
/// # Errors
///
/// Propagates flag, validation, integration, and I/O failures.
pub fn trace(args: &[String]) -> Result<String, CliError> {
    let (explicit, scenario, rest) = match args.split_first() {
        Some((s, rest)) if !s.starts_with("--") => (true, s.as_str(), rest),
        _ => (false, "thm1", args),
    };
    let flags = Flags::parse(rest)?;
    flags.ensure_known(&with_param_flags(&[
        "t-end",
        "out",
        "frame-bits",
        "faults",
        "engine",
        "scheduler",
        "hybrid-guard",
        "topo",
        "traffic",
    ]))?;
    if let Some((topo, traffic)) = topo_request(&flags)? {
        if explicit && scenario != "packet" {
            return Err(CliError::Usage(format!(
                "--topo replaces the packet scenario; it does not apply to `{scenario}`"
            )));
        }
        return trace_net(&flags, &topo, &traffic);
    }
    let mut p = params_from(&flags)?;
    let level = telemetry_level(&flags, TelemetryLevel::Full)?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.01);
    if t_end <= 0.0 {
        return Err(CliError::Usage("--t-end must be positive".into()));
    }

    let mut tel = Telemetry::new(level);
    let mut out = String::new();
    match scenario {
        "thm1" | "limit-cycle" => {
            if flags.get("faults").is_some() {
                return Err(CliError::Usage("--faults only applies to the packet scenario".into()));
            }
            if flags.get("scheduler").is_some() {
                return Err(CliError::Usage(
                    "--scheduler only applies to the packet scenario".into(),
                ));
            }
            if flags.get("hybrid-guard").is_some() {
                return Err(CliError::Usage(
                    "--hybrid-guard only applies to the packet scenario with --engine hybrid"
                        .into(),
                ));
            }
            if scenario == "thm1" && flags.get_f64("buffer")?.is_none() {
                // Size the buffer to exactly the Theorem-1 requirement so
                // the trace shows the certified-stable regime.
                let required = theorem1_required_buffer(&p);
                p = p.with_buffer(required);
            }
            let sys = BcnFluid::linearized(p.clone());
            // When telemetry is on (the default here) the library falls
            // back to the instrumented DOPRI5 path regardless of engine.
            let opts = FluidOptions::default()
                .with_t_end(t_end)
                .with_record_dt(t_end / 2000.0)
                .with_engine(engine_choice(&flags)?);
            let run = fluid_trajectory_telemetry(&sys, p.initial_point(), &opts, Some(&mut tel))
                .map_err(CliError::Solver)?;
            let _ = writeln!(
                out,
                "scenario {scenario}: buffer = {:.4e} bits, {} region switches over {t_end} s, \
                 q in [{:.4e}, {:.4e}] bits",
                p.buffer,
                run.switch_count(),
                p.q0 + run.solution.min_component(0),
                p.q0 + run.solution.max_component(0),
            );
        }
        "packet" => {
            // A fluid-integrator (or unknown) engine on the packet
            // scenario is a typed usage error naming the valid engines,
            // never silently ignored.
            let hybrid = hybrid_spec_from(&flags, &p)?;
            let frame_bits = flags.get_f64("frame-bits")?.unwrap_or(8_000.0);
            if frame_bits <= 0.0 {
                return Err(CliError::Usage("--frame-bits must be positive".into()));
            }
            let mut cfg = SimConfig::from_fluid(&p, frame_bits, Duration::from_secs(2e-6), t_end);
            cfg.scheduler = scheduler_choice(&flags)?;
            cfg.faults = single_run_faults(&flags)?;
            cfg.validate()?;
            let (report, hybrid_stats) = match hybrid {
                Some(spec) => {
                    spec.validate_for(&cfg)?;
                    let run = HybridSim::new(spec.params, cfg, spec.guards)
                        .with_telemetry_sink(tel)
                        .run();
                    (run.sim, Some(run.stats))
                }
                None => (Simulation::with_telemetry(cfg, tel).run(), None),
            };
            let m = &report.metrics;
            let _ = writeln!(
                out,
                "scenario packet: {} flows over {t_end} s, {} frames delivered, {} dropped",
                p.n_flows, m.delivered_frames, m.dropped_frames,
            );
            if let Some(stats) = &hybrid_stats {
                out.push_str(&render_hybrid_stats(stats));
            }
            out.push_str(&render_fault_counts(&m.faults));
            tel = report.telemetry.unwrap_or_default();
        }
        other => {
            return Err(CliError::Usage(format!(
                "unknown trace scenario `{other}`; expected thm1, limit-cycle, or packet"
            )));
        }
    }
    out.push_str(&render_summary(&tel));
    if let Some(path) = flags.get("out") {
        std::fs::write(path, tel.trace_to_jsonl())?;
        let _ = writeln!(out, "wrote {path} ({} events)", tel.trace.len());
    }
    Ok(out)
}

/// `dcebcn trace --topo ...`: an instrumented fabric run — the
/// multi-hop engine with full telemetry, the summary tables, and the
/// optional JSONL trace dump.
fn trace_net(flags: &Flags, topo: &TopoSpec, traffic: &Traffic) -> Result<String, CliError> {
    reject_sim_only_flags(flags, &["engine", "hybrid-guard", "frame-bits"])?;
    let t_end = flags.get_f64("t-end")?.unwrap_or(0.005);
    if t_end <= 0.0 {
        return Err(CliError::Usage("--t-end must be positive".into()));
    }
    let level = telemetry_level(flags, TelemetryLevel::Full)?;
    let mut cfg = compile(topo, traffic, t_end)?;
    cfg.scheduler = scheduler_choice(flags)?;
    cfg.faults = single_run_faults(flags)?;
    let (hosts, switches, n_flows) = (cfg.hosts, cfg.switches.len(), cfg.flows.len());
    let mut report = NetSim::try_new(cfg)?.with_telemetry_sink(Telemetry::new(level)).run();
    let tel = report.telemetry.take().unwrap_or_default();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario fabric: {hosts} hosts, {switches} switches, {n_flows} flows over {t_end} s"
    );
    out.push_str(&net_summary(&report, t_end));
    out.push_str(&render_summary(&tel));
    if let Some(path) = flags.get("out") {
        std::fs::write(path, tel.trace_to_jsonl())?;
        let _ = writeln!(out, "wrote {path} ({} events)", tel.trace.len());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(ToString::to_string).collect()
    }

    #[test]
    fn analyze_reports_the_worked_example() {
        let out = analyze(&argv("")).unwrap();
        assert!(out.contains("case 1"), "{out}");
        assert!(out.contains("NOT guaranteed"), "{out}");
        // And with the Theorem-1 buffer it passes.
        let out = analyze(&argv("--buffer 14e6")).unwrap();
        assert!(out.contains("GUARANTEED"), "{out}");
    }

    #[test]
    fn buffer_quantifies_conservatism() {
        let out = buffer(&argv("")).unwrap();
        assert!(out.contains("Theorem 1 requires"), "{out}");
        assert!(out.contains("INSUFFICIENT"), "{out}");
    }

    #[test]
    fn simulate_writes_csv() {
        let path = std::env::temp_dir().join("dcebcn_sim_test.csv");
        let _ = std::fs::remove_file(&path);
        let out = simulate(&argv(&format!("--t-end 0.002 --out {}", path.display()))).unwrap();
        assert!(out.contains("region switches"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("t,q_bits,aggregate_rate"));
        assert!(body.lines().count() > 1000);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn simulate_rejects_bad_horizon() {
        assert!(simulate(&argv("--t-end -1")).is_err());
    }

    #[test]
    fn simulate_engines_agree_on_the_reported_range() {
        // Same run through both engines: the reported queue extrema match
        // to well under the printed 4-digit precision, so the rendered
        // lines are identical.
        let ana = simulate(&argv("--t-end 0.002 --engine analytic")).unwrap();
        let num = simulate(&argv("--t-end 0.002 --engine dopri5")).unwrap();
        assert_eq!(ana.lines().next(), num.lines().next(), "{ana} vs {num}");
        assert!(simulate(&argv("--t-end 0.002 --engine rk4")).is_err());
    }

    #[test]
    fn trace_packet_rejects_fluid_engines_with_the_valid_list() {
        // The satellite bugfix: a fluid-integrator engine on the packet
        // scenario used to be silently ignored; it is now a typed usage
        // error (exit 2) that names the engines valid here.
        for fluid in ["analytic", "dopri5", "rk4"] {
            let err = trace(&argv(&format!("packet --engine {fluid} --t-end 0.01"))).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{fluid}: {err}");
            let msg = err.to_string();
            assert!(msg.contains("--engine"), "{fluid}: {msg}");
            assert!(msg.contains("packet or hybrid"), "{fluid}: {msg}");
        }
        // The engines that do apply are accepted.
        let out = trace(&argv(&format!("packet --engine packet {FAST_SIM}"))).unwrap();
        assert!(out.contains("scenario packet"), "{out}");
        let out = trace(&argv(&format!("packet --engine hybrid {FAST_SIM}"))).unwrap();
        assert!(out.contains("scenario packet"), "{out}");
        // And the fluid scenarios still reject the packet-side engines.
        let err = trace(&argv("thm1 --engine hybrid --t-end 0.002")).unwrap_err();
        assert!(err.to_string().contains("analytic or dopri5"), "{err}");
    }

    #[test]
    fn packet_hybrid_engine_fast_forwards_and_reports_epochs() {
        let out = packet(&argv(&format!("{FAST_LONG} --engine hybrid"))).unwrap();
        assert!(out.contains("hybrid engine:"), "{out}");
        assert!(out.contains("epoch(s) fast-forwarded"), "{out}");
        assert!(out.contains("delivered frames"), "{out}");
    }

    #[test]
    fn packet_hybrid_always_packet_renders_identically() {
        // With the guard forced to always-packet the wrapper is
        // bit-identical to the pure engine, down to the rendered bytes
        // (no hybrid line: zero epochs print nothing).
        let pure = packet(&argv(FAST_SIM)).unwrap();
        let wrapped =
            packet(&argv(&format!("{FAST_SIM} --engine hybrid --hybrid-guard always-packet")))
                .unwrap();
        assert_eq!(pure, wrapped);
    }

    #[test]
    fn hybrid_guard_requires_the_hybrid_engine() {
        let err = packet(&argv(&format!("{FAST_SIM} --hybrid-guard eq=0.1"))).unwrap_err();
        assert!(err.to_string().contains("--engine hybrid"), "{err}");
        let err = trace(&argv("thm1 --hybrid-guard eq=0.1 --t-end 0.002")).unwrap_err();
        assert!(err.to_string().contains("--hybrid-guard"), "{err}");
        // Bad knobs are rejected before the run starts.
        assert!(
            packet(&argv(&format!("{FAST_SIM} --engine hybrid --hybrid-guard eq=0.9"))).is_err()
        );
    }

    #[test]
    fn simulate_hybrid_writes_the_same_csv_schema() {
        let path = std::env::temp_dir().join("dcebcn_sim_hybrid_test.csv");
        let _ = std::fs::remove_file(&path);
        let out = simulate(&argv(&format!("{FAST_LONG} --engine hybrid --out {}", path.display())))
            .unwrap();
        assert!(out.contains("co-simulated"), "{out}");
        assert!(out.contains("hybrid engine:"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("t,q_bits,aggregate_rate"), "{}", &body[..40.min(body.len())]);
        assert!(body.lines().count() > 100, "CSV too sparse");
        // --nonlinear belongs to the fluid integrators.
        assert!(simulate(&argv("--t-end 0.002 --engine hybrid --nonlinear")).is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_hybrid_engine_carries_epoch_counters() {
        let out =
            batch(&argv(&format!("{FAST_LONG} --engine hybrid --seeds 2 --telemetry summary")))
                .unwrap();
        assert!(out.contains("batch: 2 seeds"), "{out}");
        assert!(out.contains("hybrid.epochs"), "{out}");
        assert!(out.contains("hybrid.ff_ns"), "{out}");
    }

    #[test]
    fn trace_fluid_rejects_scheduler_flag() {
        let err = trace(&argv("thm1 --scheduler heap --t-end 0.01")).unwrap_err();
        assert!(err.to_string().contains("--scheduler"), "{err}");
    }

    #[test]
    fn packet_schedulers_render_identically() {
        // The wheel is the default; an explicit heap run must print the
        // same report byte for byte (the engines are bit-identical).
        let wheel = packet(&argv(&format!("{FAST_SIM} --scheduler wheel"))).unwrap();
        let heap = packet(&argv(&format!("{FAST_SIM} --scheduler heap"))).unwrap();
        let default = packet(&argv(FAST_SIM)).unwrap();
        assert_eq!(wheel, heap);
        assert_eq!(wheel, default);
        assert!(packet(&argv(&format!("{FAST_SIM} --scheduler calendar"))).is_err());
    }

    #[test]
    fn atlas_counts_are_consistent() {
        // Small grid on the fast test scale.
        let out = atlas(&argv("--grid 4 --capacity 1e6 --q0 2e4 --buffer 1.5e5 --ru 1e4 --gi 1 --gd 0.015625 --pm 0.05"))
            .unwrap();
        assert!(out.contains("atlas 4x4"), "{out}");
    }

    #[test]
    fn packet_summary_has_all_sections() {
        let out = packet(&argv(
            "--n 5 --capacity 1e9 --q0 1e6 --buffer 8e6 --qsc 7.2e6 --ru 1e4 --gi 1.2 --gd 0.00006103515625 --pm 0.2 --w 3e5 --t-end 0.05",
        ))
        .unwrap();
        assert!(out.contains("delivered frames"), "{out}");
        assert!(out.contains("queueing delay"), "{out}");
    }

    #[test]
    fn batch_reports_every_seed_and_writes_csv() {
        let path = std::env::temp_dir().join("dcebcn_batch_test.csv");
        let _ = std::fs::remove_file(&path);
        let out = batch(&argv(&format!(
            "--n 5 --capacity 1e9 --q0 1e6 --buffer 8e6 --qsc 7.2e6 --ru 1e4 --gi 1.2 \
             --gd 0.00006103515625 --pm 0.2 --w 3e5 --t-end 0.02 --seeds 3 \
             --telemetry summary --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("batch: 3 seeds"), "{out}");
        assert!(out.contains("utilisation spread"), "{out}");
        assert!(out.contains("telemetry summary"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("seed,delivered,dropped"));
        assert_eq!(body.lines().count(), 4, "{body}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_rejects_zero_seeds() {
        assert!(batch(&argv("--seeds 0")).is_err());
    }

    const FAST_SIM: &str = "--n 5 --capacity 1e9 --q0 1e6 --buffer 8e6 --qsc 7.2e6 --ru 1e4 \
                            --gi 1.2 --gd 0.00006103515625 --pm 0.2 --w 3e5 --t-end 0.02";

    /// The same scenario over a horizon long enough for its quiescent
    /// tail to admit hybrid fast-forward epochs.
    const FAST_LONG: &str = "--n 5 --capacity 1e9 --q0 1e6 --buffer 8e6 --qsc 7.2e6 --ru 1e4 \
                             --gi 1.2 --gd 0.00006103515625 --pm 0.2 --w 3e5 --t-end 0.2";

    #[test]
    fn batch_quarantines_a_panicking_seed() {
        let dir = std::env::temp_dir().join("dcebcn_postmortem_test");
        let _ = std::fs::remove_dir_all(&dir);
        let out = batch(&argv(&format!(
            "{FAST_SIM} --seeds 4 --faults panic-seed=2 --postmortem-dir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("quarantined 1 of 4 seeds"), "{out}");
        assert!(out.contains("seed 2: seed 2: intentional panic"), "{out}");
        assert!(out.contains("utilisation spread"), "other seeds still reported: {out}");
        // The flight recorder dumped the failing seed's last moments.
        let body = std::fs::read_to_string(dir.join("postmortem-2.jsonl")).unwrap();
        let mut lines = body.lines();
        telemetry::check_schema_header(lines.next().unwrap()).unwrap();
        let record = lines.next().unwrap();
        assert!(record.contains(r#""type":"postmortem""#), "{record}");
        assert!(record.contains(r#""seed":2"#), "{record}");
        assert!(record.contains("intentional panic"), "{record}");
        assert!(record.contains(r#""config_digest":"#), "{record}");
        // One open_span record per span still open at the panic; the
        // outermost is the batch-seed span. Then the trace ring,
        // decodable as events, and finally the replay context (seeded
        // config + fault plan).
        let rest: Vec<&str> = lines.collect();
        let ctx = rest
            .iter()
            .position(|l| l.contains(r#""type":"replay""#))
            .expect("postmortem carries a replay context");
        let (open_spans, events): (Vec<&str>, Vec<&str>) =
            rest[..ctx].iter().partition(|l| l.contains(r#""type":"open_span""#));
        assert!(open_spans[0].contains(r#""kind":"batch_seed""#), "{}", open_spans[0]);
        let events: Vec<_> =
            events.iter().map(|l| telemetry::event_from_jsonl(l).unwrap()).collect();
        assert!(!events.is_empty(), "flight recorder carried no events:\n{body}");
        assert!(rest[ctx..].iter().any(|l| l.contains(r#""type":"fault_plan""#)), "{body}");
        // The dump replays end-to-end: same seed, same panic.
        let msg = replay(&argv(&dir.join("postmortem-2.jsonl").display().to_string())).unwrap();
        assert!(msg.contains("replayed seed 2"), "{msg}");
        assert!(msg.contains("reproduced"), "{msg}");
        assert!(msg.contains("intentional panic"), "{msg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_rejects_missing_and_undecodable_dumps() {
        let err = replay(&[]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let err = replay(&argv("--telemetry off")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)), "{err}");
        let path = std::env::temp_dir().join("dcebcn_replay_not_a_dump.jsonl");
        std::fs::write(&path, format!("{}\n", telemetry::schema_header())).unwrap();
        let err = replay(&argv(&path.display().to_string())).unwrap_err();
        assert!(matches!(err, CliError::Analysis(_)), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_fail_fast_turns_failures_into_an_error() {
        let dir = std::env::temp_dir().join("dcebcn_fail_fast_test");
        let err = batch(&argv(&format!(
            "{FAST_SIM} --seeds 4 --faults panic-seed=2 --fail-fast --postmortem-dir {}",
            dir.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Batch(_)), "{err}");
        assert!(err.to_string().contains("1 of 4 seeds failed"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_renders_fault_tallies() {
        let out = batch(&argv(&format!("{FAST_SIM} --seeds 2 --faults feedback-loss=0.3,seed=11")))
            .unwrap();
        assert!(out.contains("injected faults"), "{out}");
        assert!(out.contains("feedback dropped"), "{out}");
    }

    #[test]
    fn packet_accepts_faults_and_reports_them() {
        let out = packet(&argv(&format!("{FAST_SIM} --faults feedback-loss=1.0"))).unwrap();
        assert!(out.contains("injected faults"), "{out}");
        assert!(out.contains("feedback messages:  0"), "{out}");
        // panic-seed is a batch-only key.
        assert!(packet(&argv(&format!("{FAST_SIM} --faults panic-seed=1"))).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected_per_command() {
        assert!(analyze(&argv("--bogus 1")).is_err());
        assert!(buffer(&argv("--t-end 1")).is_err(), "buffer takes no t-end");
    }

    #[test]
    fn trace_thm1_emits_summary_and_jsonl() {
        let path = std::env::temp_dir().join("dcebcn_trace_test.jsonl");
        let _ = std::fs::remove_file(&path);
        let out = trace(&argv(&format!("thm1 --t-end 0.01 --out {}", path.display()))).unwrap();
        assert!(out.contains("telemetry summary"), "{out}");
        assert!(out.contains("solver.steps_accepted"), "{out}");
        assert!(out.contains("solver.step_size_s"), "{out}");
        assert!(out.contains("queue.occupancy_bits"), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        let mut lines = body.lines();
        telemetry::check_schema_header(lines.next().unwrap()).unwrap();
        let mut kinds = std::collections::BTreeSet::new();
        for line in lines {
            kinds.insert(telemetry::event_from_jsonl(line).unwrap().type_name());
        }
        for required in ["solver_step_accepted", "region_switch", "queue_extremum", "span_begin"] {
            assert!(kinds.contains(required), "missing {required} in {kinds:?}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_defaults_to_thm1_and_respects_off() {
        let out = trace(&argv("--telemetry off --t-end 0.002")).unwrap();
        assert!(out.contains("scenario thm1"), "{out}");
        assert!(out.contains("telemetry: off"), "{out}");
        assert!(!out.contains("telemetry summary"), "{out}");
    }

    #[test]
    fn trace_packet_scenario_counts_messages() {
        let out = trace(&argv(
            "packet --telemetry summary --n 5 --capacity 1e9 --q0 1e6 --buffer 8e6 \
             --qsc 7.2e6 --ru 1e4 --gi 1.2 --gd 0.00006103515625 --pm 0.2 --w 3e5 --t-end 0.02",
        ))
        .unwrap();
        assert!(out.contains("scenario packet"), "{out}");
        assert!(out.contains("sim.bcn_messages"), "{out}");
        assert!(out.contains("queue.occupancy_bits"), "{out}");
    }

    #[test]
    fn trace_rejects_unknown_scenario_and_level() {
        assert!(trace(&argv("bogus")).is_err());
        assert!(trace(&argv("thm1 --telemetry verbose")).is_err());
    }

    #[test]
    fn report_thm1_writes_all_artifacts() {
        let dir = std::env::temp_dir().join("dcebcn_report_thm1");
        let _ = std::fs::remove_dir_all(&dir);
        let out = report(&argv(&format!("thm1 --t-end 0.01 --out-dir {}", dir.display()))).unwrap();
        assert!(out.contains("report for thm1"), "{out}");
        let json = std::fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(json.contains(r#""scenario": "thm1""#), "{json}");
        assert!(json.contains("solver.steps_accepted"), "{json}");
        assert!(json.contains(r#""kind": "solver_leg""#), "spans missing: {json}");
        // The propagator-cache satellite rode along on the fluid run.
        assert!(json.contains("propagator.cache."), "{json}");
        let queue_svg = std::fs::read_to_string(dir.join("timeline_queue.svg")).unwrap();
        assert!(queue_svg.starts_with("<svg"), "{queue_svg}");
        assert!(queue_svg.contains("polyline"), "queue timeline has no series lane");
        // The fluid model has no per-flow rate series (or discrete BCN
        // messages); the rate timeline degrades to the feedback axes.
        let rate_svg = std::fs::read_to_string(dir.join("timeline_rate.svg")).unwrap();
        assert!(rate_svg.starts_with("<svg"), "{rate_svg}");
        assert!(rate_svg.contains("BCN feedback"), "rate timeline fallback missing");
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("# TYPE solver_steps_accepted counter"), "{prom}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_victim_renders_pause_span_bands() {
        let dir = std::env::temp_dir().join("dcebcn_report_victim");
        let _ = std::fs::remove_dir_all(&dir);
        let out =
            report(&argv(&format!("victim --t-end 0.004 --out-dir {}", dir.display()))).unwrap();
        assert!(out.contains("report for victim"), "{out}");
        let json = std::fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(json.contains(r#""kind": "pause_episode""#), "no PAUSE spans: {json}");
        assert!(json.contains(r#""kind": "queue_depth""#), "no queue series: {json}");
        let queue_svg = std::fs::read_to_string(dir.join("timeline_queue.svg")).unwrap();
        assert!(queue_svg.contains(r#"fill-opacity="0.18""#), "no span bands: {queue_svg}");
        assert!(queue_svg.contains("PAUSE"), "band legend missing: {queue_svg}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_from_round_trips_a_trace_and_rejects_stale_files() {
        let dir = std::env::temp_dir().join("dcebcn_report_from");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.jsonl");
        trace(&argv(&format!("thm1 --t-end 0.01 --out {}", trace_path.display()))).unwrap();
        let out =
            report(&argv(&format!("--from {} --out-dir {}", trace_path.display(), dir.display())))
                .unwrap();
        assert!(out.contains("trace events"), "{out}");
        let json = std::fs::read_to_string(dir.join("report.json")).unwrap();
        assert!(json.contains(r#""kind": "solver_leg""#), "{json}");

        // A pre-span schema version (or a headerless file) is rejected.
        let stale = dir.join("stale.jsonl");
        std::fs::write(&stale, "{\"type\":\"schema\",\"version\":1}\n").unwrap();
        let err = report(&argv(&format!("--from {}", stale.display()))).unwrap_err();
        assert!(matches!(err, CliError::Analysis(_)), "{err}");
        assert!(err.to_string().contains("schema"), "{err}");
        let headerless = dir.join("headerless.jsonl");
        std::fs::write(&headerless, "{\"type\":\"region_switch\",\"t\":0,\"from\":0,\"to\":1}\n")
            .unwrap();
        assert!(report(&argv(&format!("--from {}", headerless.display()))).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_rejects_unknown_scenarios_and_bad_flags() {
        assert!(report(&argv("bogus")).is_err());
        assert!(report(&argv("thm1 --t-end 0")).is_err());
        assert!(report(&argv("thm1 --bogus 1")).is_err());
    }

    /// A small query stream: headers plus a mix of duplicate, sparse and
    /// explicit parameterisations (so batching has groups to merge).
    fn query_stream() -> (String, Vec<bcn::query::StabilityQuery>) {
        use bcn::query::{query_to_jsonl, StabilityQuery};
        let base = BcnParams::paper_defaults();
        let queries = vec![
            StabilityQuery::new(base.clone()),
            StabilityQuery::new(base.clone().with_gi(2.0)),
            StabilityQuery::new(base.clone()),
            StabilityQuery::new(base.clone().with_gd(0.05)),
        ];
        let mut text = telemetry::schema_header();
        text.push('\n');
        for q in &queries {
            text.push_str(&query_to_jsonl(q));
            text.push('\n');
        }
        // Sparse lines (paper defaults inherited) must decode too.
        text.push_str("{\"type\":\"query\",\"gi\":3.0}\n");
        let mut sparse = base;
        sparse.gi = 3.0;
        let mut queries = queries;
        queries.push(StabilityQuery::new(sparse));
        (text, queries)
    }

    #[test]
    fn query_round_trips_files_and_matches_library() {
        use bcn::query::{answer_from_jsonl, answer_to_jsonl, evaluate_batch};
        let dir = std::env::temp_dir().join("dcebcn_query_cli");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let in_path = dir.join("queries.jsonl");
        let out_path = dir.join("answers.jsonl");
        let (text, queries) = query_stream();
        std::fs::write(&in_path, &text).unwrap();

        let summary = query(&argv(&format!(
            "--in {} --out {} --telemetry summary",
            in_path.display(),
            out_path.display()
        )))
        .unwrap();
        assert!(summary.contains("answered 5 queries in 1 batch(es)"), "{summary}");
        assert!(summary.contains("query.queries"), "{summary}");

        let written = std::fs::read_to_string(&out_path).unwrap();
        let mut lines = written.lines();
        telemetry::check_schema_header(lines.next().unwrap()).unwrap();
        let expected = evaluate_batch(&queries);
        let decoded: Vec<_> = lines.clone().map(|l| answer_from_jsonl(l).unwrap()).collect();
        assert_eq!(decoded.len(), expected.len());
        for (got, want) in decoded.iter().zip(&expected) {
            assert_eq!(got.strongly_stable, want.strongly_stable);
            assert_eq!(got.max_x.to_bits(), want.max_x.to_bits());
            assert_eq!(got.min_x.to_bits(), want.min_x.to_bits());
            assert_eq!(got.required_buffer.to_bits(), want.required_buffer.to_bits());
        }
        // Decode -> re-encode is byte-identical (CI smokes rely on this).
        for line in lines {
            assert_eq!(answer_to_jsonl(&answer_from_jsonl(line).unwrap()), line);
        }

        // Chunked evaluation produces the identical answer stream.
        let out2 = dir.join("answers_chunk2.jsonl");
        query(&argv(&format!("--in {} --out {} --chunk 2", in_path.display(), out2.display())))
            .unwrap();
        assert_eq!(std::fs::read_to_string(&out2).unwrap(), written);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_rejects_bad_streams_and_flags() {
        let dir = std::env::temp_dir().join("dcebcn_query_cli_bad");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        // Headerless input is rejected up front.
        let headerless = dir.join("headerless.jsonl");
        std::fs::write(&headerless, "{\"type\":\"query\",\"gi\":1.0}\n").unwrap();
        let err =
            query(&argv(&format!("--in {} --out /dev/null", headerless.display()))).unwrap_err();
        assert!(matches!(err, CliError::Analysis(_)), "{err}");
        assert!(err.to_string().contains("schema"), "{err}");

        // Under --strict a bad line fails fast, reported with its
        // source name and line number.
        let bad = dir.join("bad.jsonl");
        let mut text = telemetry::schema_header();
        text.push('\n');
        text.push_str("{\"type\":\"query\",\"gi\":1.0}\n");
        text.push_str("{\"type\":\"query\",\"bogus\":1.0}\n");
        std::fs::write(&bad, &text).unwrap();
        let err =
            query(&argv(&format!("--in {} --out /dev/null --strict", bad.display()))).unwrap_err();
        assert!(matches!(err, CliError::Analysis(_)), "{err}");
        assert!(err.to_string().contains("bad.jsonl:3"), "{err}");

        // Empty stream, bad chunk, unknown flag.
        let empty = dir.join("empty.jsonl");
        std::fs::write(&empty, "").unwrap();
        assert!(query(&argv(&format!("--in {}", empty.display()))).is_err());
        assert!(query(&argv("--chunk 0")).is_err());
        assert!(query(&argv("--bogus 1")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn query_streams_past_malformed_lines_by_default() {
        let dir = std::env::temp_dir().join("dcebcn_query_cli_skip");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let in_path = dir.join("mixed.jsonl");
        let out_path = dir.join("answers.jsonl");
        let mut text = telemetry::schema_header();
        text.push('\n');
        text.push_str("{\"type\":\"query\",\"gi\":1.0}\n");
        text.push_str("{\"type\":\"query\",\"bogus\":1.0}\n");
        text.push_str("not json at all\n");
        text.push_str("{\"type\":\"query\",\"gi\":2.0}\n");
        std::fs::write(&in_path, &text).unwrap();

        // --chunk 1 forces the error records to straddle chunk
        // boundaries; the output order must still match the input.
        let summary = query(&argv(&format!(
            "--in {} --out {} --chunk 1",
            in_path.display(),
            out_path.display()
        )))
        .unwrap();
        assert!(summary.contains("answered 2 queries"), "{summary}");
        assert!(summary.contains("skipped 2 malformed line(s)"), "{summary}");

        let written = std::fs::read_to_string(&out_path).unwrap();
        let mut lines = written.lines();
        telemetry::check_schema_header(lines.next().unwrap()).unwrap();
        let rest: Vec<&str> = lines.collect();
        assert_eq!(rest.len(), 4, "{written}");
        assert!(rest[0].contains(r#""type":"answer""#), "{}", rest[0]);
        assert!(rest[1].contains(r#""type":"error""#), "{}", rest[1]);
        assert!(rest[1].contains(r#""line":3"#), "{}", rest[1]);
        assert!(rest[2].contains(r#""type":"error""#), "{}", rest[2]);
        assert!(rest[2].contains(r#""line":4"#), "{}", rest[2]);
        assert!(rest[3].contains(r#""type":"answer""#), "{}", rest[3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_checkpoint_resume_reproduces_the_artifact_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!("dcebcn_cli_ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let clean_csv = dir.join("clean.csv");
        let resumed_csv = dir.join("resumed.csv");
        let ckpt = dir.join("ckpt");

        let clean =
            batch(&argv(&format!("{FAST_SIM} --seeds 4 --out {}", clean_csv.display()))).unwrap();
        assert!(clean.contains("batch: 4 seeds"), "{clean}");

        // First pass populates the checkpoint; a --resume pass restores
        // every seed without re-running and writes the identical CSV.
        batch(&argv(&format!("{FAST_SIM} --seeds 4 --checkpoint-dir {}", ckpt.display()))).unwrap();
        let resumed = batch(&argv(&format!(
            "{FAST_SIM} --seeds 4 --checkpoint-dir {} --resume --out {}",
            ckpt.display(),
            resumed_csv.display()
        )))
        .unwrap();
        assert!(resumed.contains("supervision: 4 seed(s) restored from checkpoint"), "{resumed}");
        assert_eq!(
            std::fs::read_to_string(&clean_csv).unwrap(),
            std::fs::read_to_string(&resumed_csv).unwrap()
        );

        // Re-creating over an existing manifest is refused; --resume
        // without a directory is a usage error.
        let err =
            batch(&argv(&format!("{FAST_SIM} --seeds 4 --checkpoint-dir {}", ckpt.display())))
                .unwrap_err();
        assert!(matches!(err, CliError::Batch(_)), "{err}");
        assert!(batch(&argv(&format!("{FAST_SIM} --seeds 4 --resume"))).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_watchdog_demotes_seeds_and_fail_fast_maps_to_timeout() {
        let dir = std::env::temp_dir().join(format!("dcebcn_cli_watchdog-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = batch(&argv(&format!(
            "{FAST_SIM} --seeds 2 --max-seed-events 200 --telemetry summary \
             --postmortem-dir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("watchdog demoted 2 of 2 seeds"), "{out}");
        assert!(out.contains("timed out after 200 events"), "{out}");
        assert!(out.contains("batch.timed_out"), "{out}");
        // The demoted seeds replay deterministically from their dumps.
        let msg = replay(&argv(&dir.join("postmortem-0.jsonl").display().to_string())).unwrap();
        assert!(msg.contains("watchdog: event budget exhausted after 200 events"), "{msg}");
        let err = batch(&argv(&format!(
            "{FAST_SIM} --seeds 2 --max-seed-events 200 --fail-fast --postmortem-dir {}",
            dir.display()
        )))
        .unwrap_err();
        assert!(matches!(err, CliError::Timeout(_)), "{err}");
        assert!(err.to_string().contains("2 of 2 seeds hit the watchdog"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    const FAST_TOPO: &str =
        "--topo leaf-spine:leaves=2,spines=2,hosts-per-leaf=4 --traffic incast:senders=4 \
         --t-end 0.002";

    #[test]
    fn packet_topo_output_is_scheduler_invariant() {
        let wheel = packet(&argv(&format!("{FAST_TOPO} --scheduler wheel"))).unwrap();
        let heap = packet(&argv(&format!("{FAST_TOPO} --scheduler heap"))).unwrap();
        assert_eq!(wheel, heap);
        assert!(wheel.contains("fabric run over 0.002 s: 8 hosts, 4 switches, 4 flows"), "{wheel}");
        assert!(wheel.contains("delivered:"), "{wheel}");
    }

    #[test]
    fn topo_rejects_dumbbell_only_flags_and_orphan_traffic() {
        for bad in [
            format!("{FAST_TOPO} --engine hybrid"),
            format!("{FAST_TOPO} --frame-bits 4000"),
            format!("{FAST_TOPO} --n 4"),
            "--traffic incast".to_string(),
        ] {
            let err = packet(&argv(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad}: {err}");
        }
        for bad in
            [format!("{FAST_TOPO} --start-jitter 1e-5"), format!("{FAST_TOPO} --seed-retries 2")]
        {
            let err = batch(&argv(&bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad}: {err}");
        }
        // A bad spec is a typed config error, not a panic.
        assert!(matches!(packet(&argv("--topo fat-tree:k=3")).unwrap_err(), CliError::Sim(_)));
        // --topo replaces trace's packet scenario only.
        assert!(matches!(
            trace(&argv(&format!("thm1 {FAST_TOPO}"))).unwrap_err(),
            CliError::Usage(_)
        ));
    }

    #[test]
    fn batch_topo_checkpoint_resume_reproduces_the_artifact_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!("dcebcn_cli_netckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let clean_csv = dir.join("clean.csv");
        let resumed_csv = dir.join("resumed.csv");
        let ckpt = dir.join("ckpt");

        let clean =
            batch(&argv(&format!("{FAST_TOPO} --seeds 3 --out {}", clean_csv.display()))).unwrap();
        assert!(clean.contains("fabric batch: 3 seeds"), "{clean}");

        batch(&argv(&format!("{FAST_TOPO} --seeds 3 --checkpoint-dir {}", ckpt.display())))
            .unwrap();
        let resumed = batch(&argv(&format!(
            "{FAST_TOPO} --seeds 3 --checkpoint-dir {} --resume --out {}",
            ckpt.display(),
            resumed_csv.display()
        )))
        .unwrap();
        assert!(resumed.contains("supervision: 3 seed(s) restored from checkpoint"), "{resumed}");
        assert_eq!(
            std::fs::read_to_string(&clean_csv).unwrap(),
            std::fs::read_to_string(&resumed_csv).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batch_topo_quarantines_panic_seeds_and_demotes_runaways() {
        let out = batch(&argv(&format!(
            "{FAST_TOPO} --seeds 2 --faults panic-seed=1 --telemetry summary"
        )))
        .unwrap();
        assert!(out.contains("quarantined 1 of 2 seeds"), "{out}");
        assert!(out.contains("intentional panic"), "{out}");
        let out = batch(&argv(&format!("{FAST_TOPO} --seeds 2 --max-seed-events 500"))).unwrap();
        assert!(out.contains("watchdog demoted 2 of 2 seeds"), "{out}");
        let err = batch(&argv(&format!("{FAST_TOPO} --seeds 2 --max-seed-events 500 --fail-fast")))
            .unwrap_err();
        assert!(matches!(err, CliError::Timeout(_)), "{err}");
    }

    #[test]
    fn trace_topo_emits_summary_and_jsonl() {
        let path =
            std::env::temp_dir().join(format!("dcebcn_trace_topo-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let out = trace(&argv(&format!("{FAST_TOPO} --out {}", path.display()))).unwrap();
        assert!(out.contains("scenario fabric: 8 hosts, 4 switches, 4 flows"), "{out}");
        assert!(out.contains("wrote "), "{out}");
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.lines().count() > 10, "trace should hold events");
        let _ = std::fs::remove_file(&path);
    }
}
