//! Regenerates the paper's Fig. 4 (spiral trajectories).

fn main() {
    if let Err(e) = bench::figures::fig04::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
