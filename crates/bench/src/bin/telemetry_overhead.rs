//! Offline telemetry-overhead check.
//!
//! The Criterion benches (`benches/solvers.rs`) need a network fetch,
//! so this binary provides the no-dependency version of the same
//! guarantee: it integrates the paper's worked example repeatedly with
//! (a) no telemetry argument, (b) an `Off` sink, (c) a `Summary` sink,
//! and (d) a `Full` sink, and reports median wall times. The contract
//! is that (b) stays within 2% of (a).
//!
//! Run release builds only — debug timings are meaningless:
//!
//! ```console
//! $ cargo run --release -p bench --bin telemetry_overhead
//! ```

use std::time::Instant;

use bcn::simulate::{fluid_trajectory_telemetry, FluidOptions};
use bcn::{BcnFluid, BcnParams};
use telemetry::{Telemetry, TelemetryLevel};

const T_END: f64 = 0.1;
const REPS: usize = 21;

/// One timed integration with the requested sink (constructed outside
/// the timed region, as the CLI does).
fn one_run_secs(sys: &BcnFluid, p0: [f64; 2], level: Option<TelemetryLevel>) -> f64 {
    let opts = FluidOptions::default().with_t_end(T_END);
    let mut tel = level.map(Telemetry::new);
    let t0 = Instant::now();
    let run = fluid_trajectory_telemetry(sys, p0, &opts, tel.as_mut()).expect("fluid integration");
    let dt = t0.elapsed().as_secs_f64();
    assert!(!run.solution.is_empty(), "integration produced no samples");
    dt
}

fn best(samples: Vec<f64>) -> f64 {
    // The minimum is the robust estimator for "how fast can this code
    // go" — every slower sample is the same code plus scheduler or
    // clock noise.
    samples.into_iter().fold(f64::INFINITY, f64::min)
}

fn main() {
    let p = BcnParams::paper_defaults();
    let sys = BcnFluid::linearized(p.clone());
    let p0 = p.initial_point();

    // Warm up caches and the allocator before timing.
    for _ in 0..3 {
        let _ = one_run_secs(&sys, p0, None);
    }

    // Interleave the configurations, rotating the starting one each
    // round, so clock-frequency drift, scheduler noise, and
    // position-in-round effects hit all of them equally.
    let mut samples: [Vec<f64>; 4] = Default::default();
    let levels = [
        None,
        Some(TelemetryLevel::Off),
        Some(TelemetryLevel::Summary),
        Some(TelemetryLevel::Full),
    ];
    for rep in 0..REPS {
        for k in 0..levels.len() {
            let i = (rep + k) % levels.len();
            samples[i].push(one_run_secs(&sys, p0, levels[i]));
        }
    }
    let [base, off, summary, full] = samples.map(best);

    let pct = |t: f64| (t / base - 1.0) * 100.0;
    println!("telemetry overhead on fluid_trajectory ({T_END} s horizon, best of {REPS}):");
    println!("  none (baseline):  {:.3} ms", base * 1e3);
    println!("  level off:        {:.3} ms  ({:+.2}%)", off * 1e3, pct(off));
    println!("  level summary:    {:.3} ms  ({:+.2}%)", summary * 1e3, pct(summary));
    println!("  level full:       {:.3} ms  ({:+.2}%)", full * 1e3, pct(full));

    if pct(off) > 2.0 {
        telemetry::log_line!("FAIL: off-level overhead {:.2}% exceeds the 2% budget", pct(off));
        std::process::exit(1);
    }
    println!("off-level overhead within the 2% budget");
}
