//! BCN feedback-channel degradation — the empirical strong-stability
//! frontier vs the Theorem 1 prediction.
//!
//! Theorem 1 sizes the buffer for the *fault-free* loop: strong
//! stability is guaranteed when `(1 + sqrt(Ru Gi N / (Gd C))) q0 < B`.
//! The theorem says nothing about a lossy or slow feedback channel, and
//! a BCN deployment's congestion notifications cross the same fabric
//! they are trying to protect. This sweep provisions the buffer with a
//! modest margin over the Theorem 1 bound, then degrades the feedback
//! path with the fault layer (message loss x extra delay) and replays
//! the convergence transient at every grid point. The artifact is the
//! empirical frontier: how much feedback loss the provisioned margin
//! absorbs before the transient overshoot breaches the buffer — i.e.
//! points where Theorem 1 *holds* on paper yet the degraded loop
//! violates strong stability in practice.

use std::path::{Path, PathBuf};

use bcn::stability::{theorem1_holds, theorem1_required_buffer};
use dcesim::faults::FaultConfig;
use dcesim::sim::{fluid_validation_params, SimConfig, Simulation};
use dcesim::time::Duration;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};
use telemetry::Scalar;

use crate::common::{banner, grid_digest, out_dir, save_plot, GridCheckpoint};
use crate::ExpResult;

/// One grid point of the degradation sweep.
#[derive(Debug, Clone)]
struct Point {
    loss: f64,
    delay_us: f64,
    max_queue: f64,
    drops: u64,
    pauses: u64,
    feedback: u64,
    stable: bool,
}

/// The deterministic seed for every fault plan in the sweep: the grid
/// varies rates, not noise realisations.
const FAULT_SEED: u64 = 42;

/// Returns true when `DCE_BCN_QUICK` is set: CI smoke mode, which
/// shrinks the grid to the two ends of the loss axis and shortens the
/// horizon while keeping the headline counterexample reachable.
fn quick_mode() -> bool {
    std::env::var_os("DCE_BCN_QUICK").is_some()
}

/// Runs the experiment; artifacts land under `out`. Checkpoints the
/// grid under `$DCE_BCN_CHECKPOINT_DIR` when set (see
/// [`run_with_checkpoint`]).
///
/// # Errors
///
/// Propagates I/O failures, configuration rejections, and — by design —
/// fails if the sweep cannot exhibit a point where Theorem 1 holds yet
/// the degraded loop is empirically unstable (that counterexample is
/// the experiment's reason to exist).
pub fn run(out: &Path) -> ExpResult {
    let ckpt_dir = std::env::var_os("DCE_BCN_CHECKPOINT_DIR").map(PathBuf::from);
    run_with_checkpoint(out, ckpt_dir.as_deref())
}

/// [`run`] with an explicit checkpoint directory: every completed grid
/// point is journalled durably, an interrupted campaign resumes from
/// the journal, and the resumed run's artifacts are byte-identical to
/// an uninterrupted one.
///
/// # Errors
///
/// See [`run`]; additionally fails when an existing journal was
/// recorded under a different grid.
pub fn run_with_checkpoint(out: &Path, ckpt_dir: Option<&Path>) -> ExpResult {
    banner("feedback-channel degradation vs Theorem 1 (fault-injection sweep)");

    // Provision the buffer 5% above the Theorem 1 requirement: enough
    // for the fault-free transient (verified by the loss=0 row), tight
    // enough that a degraded feedback path eats the margin.
    let required = theorem1_required_buffer(&fluid_validation_params());
    let buffer = 1.05 * required;
    let params = fluid_validation_params().with_buffer(buffer).with_qsc(0.96 * buffer);
    assert!(theorem1_holds(&params), "the base point must satisfy Theorem 1");

    // The delay axis is millisecond-scale on purpose: the loop period is
    // ~26 ms and the delay ablation shows sub-period feedback lag is
    // what erodes the phase margin. Loss compounds it by thinning the
    // notifications that remain.
    let (t_end, losses, delays_us): (f64, Vec<f64>, Vec<f64>) = if quick_mode() {
        (0.15, vec![0.0, 0.2], vec![0.0, 2000.0])
    } else {
        (0.3, vec![0.0, 0.05, 0.1, 0.2, 0.35, 0.5], vec![0.0, 1000.0, 1500.0, 2000.0])
    };

    let mut table = Table::new(&[
        "loss",
        "extra delay (us)",
        "max q / B",
        "drops",
        "PAUSE",
        "feedback msgs",
        "strongly stable",
    ]);
    let mut csv = Csv::new(&["loss", "delay_us", "max_queue_bits", "drops", "pauses", "stable"]);
    let mut points: Vec<Point> = Vec::new();

    // The campaign digest pins everything that shapes a grid point's
    // outcome; a journal recorded under any other grid is refused.
    let mut digest_nums = vec![buffer, params.qsc, t_end, FAULT_SEED as f64];
    digest_nums.extend_from_slice(&losses);
    digest_nums.extend_from_slice(&delays_us);
    let mut ckpt = match ckpt_dir {
        Some(dir) => {
            Some(GridCheckpoint::open_in(dir, "feedback_degradation", grid_digest(&digest_nums))?)
        }
        None => None,
    };
    if let Some(c) = &ckpt {
        if c.restored_len() > 0 {
            println!(
                "checkpoint: restored {} of {} grid points",
                c.restored_len(),
                losses.len() * delays_us.len()
            );
        }
    }

    for &delay_us in &delays_us {
        for &loss in &losses {
            let key = format!("loss={loss},delay_us={delay_us}");
            let point = if let Some(fields) = ckpt.as_ref().and_then(|c| c.restored(&key)) {
                let get = |k: &str| {
                    GridCheckpoint::field(fields, k)
                        .ok_or_else(|| format!("checkpoint point `{key}` lacks field `{k}`"))
                };
                Point {
                    loss,
                    delay_us,
                    max_queue: get("max_queue")?.as_f64("max_queue")?,
                    drops: get("drops")?.as_u64("drops")?,
                    pauses: get("pauses")?.as_u64("pauses")?,
                    feedback: get("feedback")?.as_u64("feedback")?,
                    stable: get("stable")?.as_bool("stable")?,
                }
            } else {
                let mut cfg =
                    SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), t_end);
                if loss > 0.0 || delay_us > 0.0 {
                    cfg.faults = FaultConfig {
                        seed: FAULT_SEED,
                        feedback_loss: loss,
                        feedback_extra_delay: Duration::from_secs(delay_us * 1e-6),
                        ..FaultConfig::none()
                    };
                }
                cfg.validate()?;
                let report = Simulation::new(cfg).run();
                let m = &report.metrics;
                let max_queue = m.queue.values().iter().copied().fold(0.0f64, f64::max);
                // The paper's strong stability, observed empirically:
                // the transient never fills the buffer (no drops), never
                // trips the PAUSE escape hatch, and the recorded peak
                // stays below B.
                let stable = m.dropped_frames == 0 && m.pause_events == 0 && max_queue < buffer;
                let p = Point {
                    loss,
                    delay_us,
                    max_queue,
                    drops: m.dropped_frames,
                    pauses: m.pause_events,
                    feedback: m.feedback_messages,
                    stable,
                };
                if let Some(c) = ckpt.as_mut() {
                    #[allow(clippy::cast_precision_loss)]
                    c.record(
                        &key,
                        &[
                            ("max_queue", Scalar::Num(p.max_queue)),
                            ("drops", Scalar::Num(p.drops as f64)),
                            ("pauses", Scalar::Num(p.pauses as f64)),
                            ("feedback", Scalar::Num(p.feedback as f64)),
                            ("stable", Scalar::Bool(p.stable)),
                        ],
                    )?;
                }
                p
            };
            table.row(&[
                format!("{loss:.2}"),
                format!("{delay_us:.0}"),
                format!("{:.3}", point.max_queue / buffer),
                point.drops.to_string(),
                point.pauses.to_string(),
                point.feedback.to_string(),
                if point.stable { "yes".into() } else { "NO".into() },
            ]);
            #[allow(clippy::cast_precision_loss)]
            csv.row(&[
                loss,
                delay_us,
                point.max_queue,
                point.drops as f64,
                point.pauses as f64,
                f64::from(u8::from(point.stable)),
            ]);
            points.push(point);
        }
    }
    print!("{table}");

    // The empirical frontier: per delay column, the smallest loss rate
    // that breaks strong stability (if any within the sweep).
    for &delay_us in &delays_us {
        let first_unstable = points
            .iter()
            .filter(|p| (p.delay_us - delay_us).abs() < f64::EPSILON && !p.stable)
            .map(|p| p.loss)
            .fold(f64::INFINITY, f64::min);
        if first_unstable.is_finite() {
            println!(
                "extra delay {delay_us:>4.0} us: strong stability lost at feedback loss >= \
                 {first_unstable:.2}"
            );
        } else {
            println!("extra delay {delay_us:>4.0} us: stable across the whole loss axis");
        }
    }

    // The headline: Theorem 1 holds for these parameters (it models a
    // perfect feedback channel), yet a lossy channel violates strong
    // stability. The fault-free row must stay stable or the margin —
    // not the degradation — would be the story.
    let baseline_stable =
        points.iter().filter(|p| p.loss == 0.0 && p.delay_us == 0.0).all(|p| p.stable);
    let counterexample = points.iter().find(|p| p.loss >= 0.2 && !p.stable).cloned();
    if !baseline_stable {
        return Err("fault-free baseline is not strongly stable; widen the buffer margin".into());
    }
    let Some(ce) = counterexample else {
        return Err("no grid point with loss >= 0.2 violates strong stability; the sweep \
             failed to demonstrate the Theorem 1 gap"
            .into());
    };
    println!(
        "counterexample: loss={:.2}, extra delay={:.0} us -> max q = {:.2} B with {} drops, \
         {} PAUSE events, although Theorem 1 predicts strong stability",
        ce.loss,
        ce.delay_us,
        ce.max_queue / buffer,
        ce.drops,
        ce.pauses
    );

    csv.save(out.join("exp_feedback_degradation.csv"))?;
    println!("wrote {}", out.join("exp_feedback_degradation.csv").display());

    let mut plot = SvgPlot::new(
        "Transient peak queue vs feedback loss (Theorem 1 margin = 1.05)",
        "feedback loss probability",
        "max queue / buffer",
    );
    for (i, &delay_us) in delays_us.iter().enumerate() {
        let xs: Vec<f64> = points
            .iter()
            .filter(|p| (p.delay_us - delay_us).abs() < f64::EPSILON)
            .map(|p| p.loss)
            .collect();
        let ys: Vec<f64> = points
            .iter()
            .filter(|p| (p.delay_us - delay_us).abs() < f64::EPSILON)
            .map(|p| p.max_queue / buffer)
            .collect();
        plot = plot.with_series(Series::line(
            &format!("+{delay_us:.0} us feedback delay"),
            &xs,
            &ys,
            COLOR_CYCLE[i % COLOR_CYCLE.len()],
        ));
    }
    save_plot(&plot, out, "exp_feedback_degradation.svg")?;

    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "{{\"loss\": {:.2}, \"delay_us\": {:.0}, \"max_queue_bits\": {:.1}, \
                 \"drops\": {}, \"pauses\": {}, \"feedback_messages\": {}, \"stable\": {}}}",
                p.loss, p.delay_us, p.max_queue, p.drops, p.pauses, p.feedback, p.stable
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"theorem1_required_buffer_bits\": {required:.1},\n  \
         \"buffer_bits\": {buffer:.1},\n  \"theorem1_holds\": {},\n  \
         \"fault_seed\": {FAULT_SEED},\n  \"t_end_secs\": {t_end},\n  \
         \"quick_mode\": {},\n  \"grid\": [\n    {}\n  ],\n  \
         \"counterexample\": {{\"loss\": {:.2}, \"delay_us\": {:.0}, \
         \"max_queue_bits\": {:.1}, \"drops\": {}, \"pauses\": {}}}\n}}\n",
        theorem1_holds(&params),
        quick_mode(),
        rows.join(",\n    "),
        ce.loss,
        ce.delay_us,
        ce.max_queue,
        ce.drops,
        ce.pauses
    );
    let json_path = out.join("feedback_degradation.json");
    std::fs::write(&json_path, json)?;
    println!("wrote {}", json_path.display());
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_demonstrates_the_gap() {
        // The quick grid exercises the same code path and the same
        // acceptance gate (the counterexample must exist) in CI time.
        std::env::set_var("DCE_BCN_QUICK", "1");
        let dir = std::env::temp_dir().join("feedback_degradation_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        let json = std::fs::read_to_string(dir.join("feedback_degradation.json")).unwrap();
        assert!(json.contains("\"counterexample\""));
        assert!(json.contains("\"theorem1_holds\": true"));
        assert!(dir.join("exp_feedback_degradation.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_campaign_resumes_to_byte_identical_artifacts() {
        std::env::set_var("DCE_BCN_QUICK", "1");
        let root = std::env::temp_dir()
            .join(format!("feedback_degradation_resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let clean_out = root.join("clean");
        let resumed_out = root.join("resumed");
        let ckpt = root.join("ckpt");

        run(&clean_out).unwrap();

        // Populate the journal, then chop its tail — the torn record a
        // SIGKILL mid-append would leave behind.
        run_with_checkpoint(&root.join("first"), Some(&ckpt)).unwrap();
        let journal = ckpt.join("feedback_degradation.ckpt.jsonl");
        let text = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(text.lines().count(), 2 + 4, "header + digest + 4 quick-grid points");
        let keep: Vec<&str> = text.lines().take(4).collect();
        std::fs::write(&journal, format!("{}\n{{\"type\":\"grid_point\",\"key", keep.join("\n")))
            .unwrap();

        // The resumed campaign re-runs only the lost points and must
        // reproduce the uncheckpointed artifacts byte-for-byte.
        run_with_checkpoint(&resumed_out, Some(&ckpt)).unwrap();
        for artifact in ["exp_feedback_degradation.csv", "feedback_degradation.json"] {
            assert_eq!(
                std::fs::read_to_string(clean_out.join(artifact)).unwrap(),
                std::fs::read_to_string(resumed_out.join(artifact)).unwrap(),
                "{artifact} diverged after resume"
            );
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
