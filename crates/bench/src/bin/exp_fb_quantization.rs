//! Regenerates the FB-field quantization ablation.

fn main() {
    if let Err(e) = bench::experiments::fb_quantization::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
