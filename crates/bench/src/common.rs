//! Shared helpers for the experiment binaries.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use bcn::simulate::{fluid_trajectory, FluidOptions};
use bcn::{BcnFluid, BcnParams};
use plotkit::{Series, SvgPlot};
use telemetry::{fmt_num, parse_scalars, Scalar};

/// Where artifacts go: `$DCE_BCN_RESULTS` or `./results`.
#[must_use]
pub fn out_dir() -> PathBuf {
    std::env::var_os("DCE_BCN_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// A traced trajectory decomposed into plottable series.
#[derive(Debug, Clone, PartialEq)]
pub struct Traced {
    /// Times (s).
    pub ts: Vec<f64>,
    /// Queue deviation `x = q - q0` (bits).
    pub xs: Vec<f64>,
    /// Rate deviation `y = N r - C` (bit/s).
    pub ys: Vec<f64>,
    /// Number of region switches.
    pub switches: usize,
}

/// Integrates the switched fluid system and returns plottable arrays.
///
/// # Panics
///
/// Panics if the integration fails (experiment configurations are fixed
/// and known-good; a failure is a bug worth crashing on).
#[must_use]
pub fn trace(sys: &BcnFluid, p0: [f64; 2], t_end: f64, samples: usize) -> Traced {
    let opts = FluidOptions::default().with_t_end(t_end).with_record_dt(t_end / samples as f64);
    let sol = fluid_trajectory(sys, p0, &opts).expect("fluid integration");
    Traced {
        ts: sol.solution.times().to_vec(),
        xs: sol.solution.component(0),
        ys: sol.solution.component(1),
        switches: sol.switch_count(),
    }
}

/// Builds the standard phase-plane plot: trajectory series plus the
/// switching line `x + k y = 0` and the buffer walls `x = -q0`,
/// `x = B - q0`.
#[must_use]
pub fn phase_plot(title: &str, params: &BcnParams, series: Vec<Series>) -> SvgPlot {
    let mut plot = SvgPlot::new(title, "x = q - q0 (bits)", "y = N r - C (bit/s)");
    // The switching line across the y-range of the first series.
    let k = params.k();
    if let Some(s) = series.first() {
        let y_lo = s.ys.iter().copied().fold(f64::INFINITY, f64::min);
        let y_hi = s.ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if y_lo.is_finite() {
            let line =
                Series::line("switching line", &[-k * y_lo, -k * y_hi], &[y_lo, y_hi], "#999999");
            plot = plot.with_series(line);
        }
    }
    for s in series {
        plot = plot.with_series(s);
    }
    plot.with_vline(-params.q0, "#d62728").with_vline(params.buffer - params.q0, "#d62728")
}

/// Prints a section banner for the console output.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// Folds `nums` into a 53-bit campaign digest (splitmix64 over the f64
/// bit patterns, masked so the value survives the flat-JSONL f64
/// funnel). Grid campaigns stamp their checkpoint with it so a resumed
/// sweep refuses points recorded under a different grid.
#[must_use]
pub fn grid_digest(nums: &[f64]) -> u64 {
    let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
    for v in nums {
        let mut z = (h ^ v.to_bits()).wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h = z ^ (z >> 31);
    }
    h & ((1 << 53) - 1)
}

/// Crash-recoverable grid campaigns: an append-only flat-JSONL journal
/// of completed grid points.
///
/// A sweep opens the journal up front, skips every point the journal
/// already holds, and appends each freshly computed point with a
/// `sync_data` barrier — so a SIGKILL anywhere in the campaign loses at
/// most the in-flight point, and the next run resumes where it died
/// while producing byte-identical artifacts. A torn tail line (the
/// record the crash interrupted) fails to parse and is simply re-run.
///
/// The experiment binaries activate this when `DCE_BCN_CHECKPOINT_DIR`
/// is set; the file is `<campaign>.ckpt.jsonl` in that directory.
#[derive(Debug)]
pub struct GridCheckpoint {
    file: std::fs::File,
    restored: BTreeMap<String, Vec<(String, Scalar)>>,
}

impl GridCheckpoint {
    /// Opens (creating if needed) `<dir>/<campaign>.ckpt.jsonl`.
    ///
    /// An existing journal must carry the same schema header and grid
    /// `digest`; its completed points load into memory for
    /// [`GridCheckpoint::restored`]. A fresh journal is stamped with
    /// both before any point lands.
    ///
    /// # Errors
    ///
    /// I/O failures, a stale schema header, or a digest mismatch (the
    /// grid changed under the checkpoint — clear the directory).
    pub fn open_in(dir: &Path, campaign: &str, digest: u64) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{campaign}.ckpt.jsonl"));
        let existing = std::fs::read_to_string(&path).ok().filter(|t| !t.is_empty());
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        let mut restored = BTreeMap::new();
        match existing {
            Some(text) => {
                let mut lines = text.lines();
                if lines.next().is_none_or(|l| telemetry::check_schema_header(l).is_err()) {
                    return Err(std::io::Error::other(format!(
                        "{}: missing or stale schema header",
                        path.display()
                    )));
                }
                let found = lines
                    .next()
                    .and_then(|l| parse_scalars(l).ok())
                    .and_then(|f| Self::field(&f, "digest").cloned())
                    .and_then(|s| s.as_u64("digest").ok());
                if found != Some(digest) {
                    return Err(std::io::Error::other(format!(
                        "{}: grid digest mismatch (expected {digest}, found {found:?}); \
                         the campaign changed — use a fresh checkpoint directory",
                        path.display()
                    )));
                }
                for line in lines {
                    // A torn tail line is the point the crash caught
                    // mid-write: skip it and it re-runs.
                    let Ok(fields) = parse_scalars(line) else { continue };
                    let Some(key) = Self::field(&fields, "key").and_then(|s| s.as_str("key").ok())
                    else {
                        continue;
                    };
                    restored.insert(key.to_string(), fields.clone());
                }
            }
            None => {
                writeln!(file, "{}", telemetry::schema_header())?;
                writeln!(file, "{{\"type\":\"campaign\",\"digest\":{digest}}}")?;
                file.sync_data()?;
            }
        }
        Ok(Self { file, restored })
    }

    /// The recorded fields for `key`, when that point already completed.
    #[must_use]
    pub fn restored(&self, key: &str) -> Option<&[(String, Scalar)]> {
        self.restored.get(key).map(Vec::as_slice)
    }

    /// How many completed points the journal restored.
    #[must_use]
    pub fn restored_len(&self) -> usize {
        self.restored.len()
    }

    /// Looks `key` up in a parsed record.
    #[must_use]
    pub fn field<'a>(fields: &'a [(String, Scalar)], key: &str) -> Option<&'a Scalar> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Durably appends a completed grid point (one flat-JSONL line,
    /// `sync_data` before returning). `key` must be quote-free; numbers
    /// are written with the shortest-round-trip formatter so restored
    /// points reproduce artifacts bit-for-bit.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn record(&mut self, key: &str, fields: &[(&str, Scalar)]) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut line = format!("{{\"type\":\"grid_point\",\"key\":\"{key}\"");
        for (k, v) in fields {
            match v {
                Scalar::Num(x) => {
                    let _ = write!(line, ",\"{k}\":{}", fmt_num(*x));
                }
                Scalar::Str(s) => {
                    let _ = write!(line, ",\"{k}\":\"{s}\"");
                }
                Scalar::Bool(b) => {
                    let _ = write!(line, ",\"{k}\":{b}");
                }
            }
        }
        line.push('}');
        writeln!(self.file, "{line}")?;
        self.file.sync_data()
    }
}

/// Saves an SVG plot and reports the path.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_plot(plot: &SvgPlot, out: &Path, name: &str) -> std::io::Result<()> {
    let path = out.join(name);
    plot.save(&path)?;
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn out_dir_defaults_to_results() {
        if std::env::var_os("DCE_BCN_RESULTS").is_none() {
            assert_eq!(out_dir(), PathBuf::from("results"));
        }
    }

    #[test]
    fn trace_produces_matching_lengths() {
        let params = BcnParams::test_defaults();
        let sys = BcnFluid::linearized(params.clone());
        let tr = trace(&sys, params.initial_point(), 0.5, 100);
        assert_eq!(tr.ts.len(), tr.xs.len());
        assert_eq!(tr.ts.len(), tr.ys.len());
        assert!(tr.ts.len() >= 100);
    }

    #[test]
    fn grid_checkpoint_restores_recorded_points_and_rejects_other_grids() {
        let dir = std::env::temp_dir().join(format!("bench_grid_ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let digest = grid_digest(&[1.0, 2.5]);

        let mut ck = GridCheckpoint::open_in(&dir, "demo", digest).unwrap();
        assert_eq!(ck.restored_len(), 0);
        ck.record(
            "loss=0.2",
            &[("max_queue", Scalar::Num(1.25e6)), ("stable", Scalar::Bool(false))],
        )
        .unwrap();
        drop(ck);

        let ck = GridCheckpoint::open_in(&dir, "demo", digest).unwrap();
        assert_eq!(ck.restored_len(), 1);
        let fields = ck.restored("loss=0.2").unwrap();
        let mq = GridCheckpoint::field(fields, "max_queue").unwrap();
        assert_eq!(mq.as_f64("max_queue").unwrap().to_bits(), 1.25e6_f64.to_bits());
        assert!(!GridCheckpoint::field(fields, "stable").unwrap().as_bool("stable").unwrap());
        assert!(ck.restored("loss=0.5").is_none());
        drop(ck);

        // A torn tail line (crash mid-append) only loses that point.
        let path = dir.join("demo.ckpt.jsonl");
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"type\":\"grid_point\",\"key\":\"loss=0.5\",\"max_q");
        std::fs::write(&path, &text).unwrap();
        let ck = GridCheckpoint::open_in(&dir, "demo", digest).unwrap();
        assert_eq!(ck.restored_len(), 1);
        drop(ck);

        // A different grid refuses the journal outright.
        assert!(GridCheckpoint::open_in(&dir, "demo", digest ^ 1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_digest_separates_grids_and_fits_53_bits() {
        let a = grid_digest(&[0.0, 0.05, 0.1]);
        let b = grid_digest(&[0.0, 0.05, 0.2]);
        assert_ne!(a, b);
        assert_eq!(a, grid_digest(&[0.0, 0.05, 0.1]));
        assert!(a < (1 << 53) && b < (1 << 53));
    }

    #[test]
    fn phase_plot_renders_with_walls() {
        let params = BcnParams::test_defaults();
        let s = Series::line("t", &[0.0, 1.0], &[0.0, 1.0], "#000000");
        let svg = phase_plot("demo", &params, vec![s]).render();
        assert!(svg.contains("switching line"));
        assert!(svg.contains("stroke-dasharray"));
    }
}
