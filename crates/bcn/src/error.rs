//! Error type for BCN model construction and analysis.

use std::error::Error;
use std::fmt;

/// Errors raised when constructing or analysing a BCN system.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BcnError {
    /// A parameter failed validation (non-positive, non-finite, or
    /// violating an ordering constraint such as `q0 < B`).
    InvalidParameter {
        /// The offending parameter's name.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// An analysis routine was called on a parameterisation outside its
    /// applicable case (e.g. the Case-1 extremum formulas on a node-shaped
    /// region).
    WrongCase {
        /// What the routine required.
        expected: String,
        /// What the parameters actually are.
        actual: String,
    },
    /// A numerical sub-step (root finding, integration) failed.
    Numerical(String),
}

impl fmt::Display for BcnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BcnError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter {name}: {reason}")
            }
            BcnError::WrongCase { expected, actual } => {
                write!(f, "analysis requires {expected} but parameters give {actual}")
            }
            BcnError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
        }
    }
}

impl Error for BcnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = BcnError::InvalidParameter { name: "gi", reason: "must be positive".into() };
        assert_eq!(e.to_string(), "invalid parameter gi: must be positive");
        let e = BcnError::WrongCase {
            expected: "a spiral increase region".into(),
            actual: "node".into(),
        };
        assert!(e.to_string().contains("requires"));
        let e = BcnError::Numerical("no sign change".into());
        assert!(e.to_string().contains("numerical failure"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync + std::error::Error>() {}
        check::<BcnError>();
    }
}
