//! BCN vs QCN at packet level (the paper's Section II positions QCN as
//! the quantized successor of the BCN paradigm).
//!
//! Same dumbbell, same overload workload, two reaction-point designs:
//! BCN's symmetric AIMD driven by positive *and* negative feedback, vs
//! QCN's negative-only feedback with autonomous byte-counter recovery.
//! Reported: queue traces, drops, utilisation, Jain fairness of delivered
//! bytes.

use std::path::Path;

use dcesim::qcn::{QcnCpConfig, QcnRpConfig};
use dcesim::sim::{fluid_validation_params, Control, SimConfig, Simulation};
use dcesim::time::Time;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("BCN vs QCN at packet level");
    let params = fluid_validation_params();
    let t_end = 1.0;
    let frame_bits = 8_000.0;
    let overload_rate = params.capacity / 2.0; // 2.5x overload with N = 5

    let mk_base = || {
        let mut cfg = SimConfig::from_fluid(
            &params,
            frame_bits,
            dcesim::time::Duration::from_secs(2e-6),
            t_end,
        );
        cfg.t_end = Time::from_secs(t_end);
        for f in &mut cfg.flows {
            f.initial_rate = overload_rate;
        }
        cfg
    };

    let bcn_cfg = mk_base();
    let mut qcn_cfg = mk_base();
    qcn_cfg.control = Control::Qcn {
        cp: QcnCpConfig {
            q_eq_bits: params.q0,
            w: 2.0,
            sample_every: (1.0 / params.pm).round() as u64,
        },
        rp: QcnRpConfig::standard(params.capacity),
    };

    let bcn = Simulation::new(bcn_cfg).run();
    let qcn = Simulation::new(qcn_cfg).run();

    let mut table = Table::new(&[
        "scheme",
        "drops",
        "utilisation",
        "fairness (bytes)",
        "max queue (bits)",
        "tail mean queue",
        "feedback msgs",
    ]);
    let mut csv = Csv::new(&["scheme", "t", "q"]);
    for (id, (name, report)) in [("BCN", &bcn), ("QCN", &qcn)].iter().enumerate() {
        let m = &report.metrics;
        let tail = tail_mean(m.queue.times(), m.queue.values(), 0.5 * t_end);
        table.row(&[
            (*name).to_string(),
            m.dropped_frames.to_string(),
            format!("{:.3}", m.utilization(params.capacity, t_end)),
            format!("{:.3}", m.fairness()),
            format!("{:.3e}", m.queue.max()),
            format!("{tail:.3e}"),
            m.feedback_messages.to_string(),
        ]);
        for (t, q) in m.queue.times().iter().zip(m.queue.values()) {
            csv.row(&[id as f64, *t, *q]);
        }
    }
    print!("{table}");

    csv.save(out.join("exp_bcn_vs_qcn.csv"))?;
    println!("wrote {}", out.join("exp_bcn_vs_qcn.csv").display());
    let plot = SvgPlot::new("Queue under BCN vs QCN (2.5x overload start)", "t (s)", "q (bits)")
        .with_series(Series::line(
            "BCN",
            bcn.metrics.queue.times(),
            bcn.metrics.queue.values(),
            COLOR_CYCLE[0],
        ))
        .with_series(Series::line(
            "QCN",
            qcn.metrics.queue.times(),
            qcn.metrics.queue.values(),
            COLOR_CYCLE[1],
        ))
        .with_hline(params.q0, "#999999");
    save_plot(&plot, out, "exp_bcn_vs_qcn.svg")?;
    Ok(())
}

fn tail_mean(ts: &[f64], qs: &[f64], t0: f64) -> f64 {
    let vals: Vec<f64> = ts.iter().zip(qs).filter(|(t, _)| **t >= t0).map(|(_, q)| *q).collect();
    if vals.is_empty() {
        f64::NAN
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("bvq_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_bcn_vs_qcn.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
