//! Packet-level simulator throughput: events per second of wall time for
//! BCN-, QCN-, and uncontrolled runs, plus the saturating fluid
//! simulator for comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bcn::simulate::SaturatingFluid;
use dcesim::qcn::{QcnCpConfig, QcnRpConfig};
use dcesim::sim::{fluid_validation_params, Control, SimConfig, Simulation};
use dcesim::time::Duration;

fn base_cfg(t_end: f64) -> SimConfig {
    let params = fluid_validation_params();
    SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), t_end)
}

fn bench_des(c: &mut Criterion) {
    let mut group = c.benchmark_group("des");
    group.sample_size(20);
    group.bench_function("bcn_50ms_sim", |b| {
        b.iter(|| black_box(Simulation::new(base_cfg(0.05)).run()))
    });
    group.bench_function("qcn_50ms_sim", |b| {
        let params = fluid_validation_params();
        b.iter(|| {
            let mut cfg = base_cfg(0.05);
            cfg.control = Control::Qcn {
                cp: QcnCpConfig { q_eq_bits: params.q0, w: 2.0, sample_every: 5 },
                rp: QcnRpConfig::standard(params.capacity),
            };
            black_box(Simulation::new(cfg).run())
        })
    });
    group.bench_function("uncontrolled_50ms_sim", |b| {
        b.iter(|| {
            let mut cfg = base_cfg(0.05);
            cfg.control = Control::None;
            black_box(Simulation::new(cfg).run())
        })
    });
    group.finish();
}

fn bench_saturating_fluid(c: &mut Criterion) {
    let params = fluid_validation_params();
    let mut group = c.benchmark_group("fluid");
    group.sample_size(20);
    group.bench_function("saturating_50ms_sim", |b| {
        let sim = SaturatingFluid::new(params.clone());
        b.iter(|| black_box(sim.run_canonical(0.05)))
    });
    group.finish();
}

criterion_group!(benches, bench_des, bench_saturating_fluid);
criterion_main!(benches);
