//! Timing-wheel vs binary-heap packet-engine benchmark and equivalence
//! gate.
//!
//! Exercises the two [`Scheduler`] backends of `dcesim` on the Fig. 7
//! limit-cycle scenario and a 16-server incast, and enforces the PR's
//! three hot-path guarantees:
//!
//! 1. **Bit-identity** — `SimMetrics` + final rates match byte for byte
//!    across schedulers on both scenarios (faults off *and* on), the
//!    multi-switch [`NetReport`] matches across schedulers, and a batch
//!    run matches across schedulers *and* worker counts (1 vs 4).
//! 2. **Zero steady-state allocations** — with a warm
//!    [`SimWorkspace`], the wheel engine performs no heap allocations
//!    after warm-up (counted by this binary's own wrapping allocator;
//!    the library itself forbids unsafe code, but a bin target is its
//!    own crate root).
//! 3. **Throughput** — queue-op replay (the same recorded
//!    schedule/pop sequence driven through both backends) must run at
//!    least 2x faster on the wheel at a deep backlog; end-to-end
//!    events/sec on both scenarios is measured and reported alongside
//!    (the engine's backlog is shallow, so the end-to-end ratio is
//!    informational, not gated).
//!
//! Results land in `BENCH_packet.json` under the usual results
//! directory. Run release builds only:
//!
//! ```console
//! $ cargo run --release -p bench --bin packet_engine
//! ```
//!
//! `DCE_BCN_QUICK` shortens the horizons and skips the replay speedup
//! gate (CI smoke mode — every equivalence and allocation check still
//! runs in full).

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bench::common::out_dir;
use dcesim::batch::{run_batch, BatchConfig};
use dcesim::faults::FaultConfig;
use dcesim::metrics::SimMetrics;
use dcesim::net::{victim_topology, NetSim, PauseConfig};
use dcesim::sched::{EventQueue, Scheduler};
use dcesim::sim::{fluid_validation_params, SimConfig, SimWorkspace, Simulation};
use dcesim::time::{Duration, Time};
use dcesim::topo::{compile, TopoSpec, Traffic};
use dcesim::workload;
use telemetry::{Telemetry, TelemetryLevel};

/// Replay throughput gate: wheel ops/sec over heap ops/sec at the deep
/// backlog profile.
const MIN_REPLAY_SPEEDUP: f64 = 2.0;
/// Frame size used throughout (bits).
const FRAME: f64 = 8_000.0;

// --- counting allocator (bench binary only) -------------------------------

/// Counts allocation events (alloc + realloc) on top of the system
/// allocator. Used to prove the wheel's steady state allocates nothing;
/// never enabled in the library, which forbids unsafe code.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

// --- scenarios ------------------------------------------------------------

fn quick() -> bool {
    std::env::var_os("DCE_BCN_QUICK").is_some()
}

/// The Fig. 7 limit-cycle parameterisation on the packet engine.
fn limit_cycle(t_end: f64) -> SimConfig {
    SimConfig::from_fluid(&fluid_validation_params(), FRAME, Duration::from_secs(2e-6), t_end)
}

/// 16 servers answering a parallel read into the same bottleneck at 4x
/// overload — the drop/PAUSE-heavy counterpoint to the limit cycle.
fn incast16(t_end: f64) -> SimConfig {
    let params = fluid_validation_params();
    let mut cfg = limit_cycle(t_end);
    cfg.flows = workload::incast(16, params.capacity / 4.0, 300.0 * FRAME);
    cfg
}

/// A deterministic mixed fault plan for the faulted equivalence runs.
fn fault_plan() -> FaultConfig {
    let mut f = FaultConfig::none();
    f.seed = 7;
    f.feedback_loss = 0.05;
    f.feedback_corrupt = 0.02;
    f.data_loss = 0.005;
    f
}

fn run_with(cfg: &SimConfig, scheduler: Scheduler) -> (SimMetrics, Vec<f64>) {
    let mut c = cfg.clone();
    c.scheduler = scheduler;
    let report = Simulation::new(c).run();
    (report.metrics, report.final_rates)
}

/// Events dispatched by one run (the scheduler's popped counter).
fn count_events(cfg: &SimConfig) -> u64 {
    let report =
        Simulation::with_telemetry(cfg.clone(), Telemetry::new(TelemetryLevel::Summary)).run();
    let tel = report.telemetry.expect("telemetry requested");
    let popped = tel
        .metrics
        .counters()
        .find(|(name, _)| *name == "scheduler.events_popped")
        .map(|(_, v)| v)
        .expect("scheduler.events_popped counter");
    popped
}

/// Best-of-`reps` wall time of one untelemetered run.
fn time_run(cfg: &SimConfig, scheduler: Scheduler, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let mut c = cfg.clone();
        c.scheduler = scheduler;
        let t0 = Instant::now();
        black_box(Simulation::new(c).run());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

// --- equivalence gates ----------------------------------------------------

/// Scheduler bit-identity on the single-bottleneck engine.
fn check_sim_equivalence(failures: &mut Vec<String>, t_end: f64) {
    for (name, cfg) in [("limit-cycle", limit_cycle(t_end)), ("incast-16", incast16(t_end))] {
        for faults in [FaultConfig::none(), fault_plan()] {
            let mut c = cfg.clone();
            let faulty = faults.enabled();
            c.faults = faults;
            let wheel = run_with(&c, Scheduler::Wheel);
            let heap = run_with(&c, Scheduler::Heap);
            if wheel != heap {
                failures.push(format!(
                    "sim scenario {name} (faults: {faulty}): wheel and heap reports differ"
                ));
            }
        }
    }
}

/// Scheduler bit-identity on the multi-switch engine.
fn check_net_equivalence(failures: &mut Vec<String>, t_end: f64) {
    let trunk = 1e9;
    for faults in [FaultConfig::none(), fault_plan()] {
        let faulty = faults.enabled();
        let report_for = |scheduler: Scheduler| {
            let pause = PauseConfig {
                enabled: true,
                hold: Duration::from_secs(40.0 * FRAME / trunk),
                per_priority: false,
            };
            let (mut cfg, _) =
                victim_topology(4, trunk, FRAME, Duration::from_secs(1e-6), t_end, pause, None);
            cfg.scheduler = scheduler;
            cfg.faults = faults.clone();
            NetSim::new(cfg).run()
        };
        if report_for(Scheduler::Wheel) != report_for(Scheduler::Heap) {
            failures
                .push(format!("net victim topology (faults: {faulty}): scheduler reports differ"));
        }
    }
}

/// Scheduler and worker-count bit-identity on batched runs.
fn check_batch_equivalence(failures: &mut Vec<String>, t_end: f64) {
    let run = |scheduler: Scheduler, threads: usize, faults: FaultConfig| {
        parkit::set_threads(threads);
        let mut base = limit_cycle(t_end);
        base.scheduler = scheduler;
        base.faults = faults;
        let mut cfg = BatchConfig::quick(base, 6);
        cfg.level = TelemetryLevel::Off;
        let report = run_batch(&cfg);
        let out: Vec<(u64, SimMetrics, Vec<f64>)> = report
            .completed()
            .map(|(seed, r)| (seed, r.metrics.clone(), r.final_rates.clone()))
            .collect();
        parkit::set_threads(0);
        out
    };
    for faults in [FaultConfig::none(), fault_plan()] {
        let faulty = faults.enabled();
        let baseline = run(Scheduler::Wheel, 1, faults.clone());
        for (scheduler, threads) in
            [(Scheduler::Wheel, 4), (Scheduler::Heap, 1), (Scheduler::Heap, 4)]
        {
            if run(scheduler, threads, faults.clone()) != baseline {
                failures.push(format!(
                    "batch ({}, {threads} workers, faults: {faulty}) diverged from \
                     (wheel, 1 worker)",
                    scheduler.name()
                ));
            }
        }
    }
}

/// Steady-state allocation count of a warm wheel run: run once to grow
/// every buffer, rebuild from the recycled workspace, step past warm-up,
/// then count allocations to completion.
fn steady_state_allocations(scheduler: Scheduler, t_end: f64) -> u64 {
    let cfg = {
        let mut c = limit_cycle(t_end);
        c.scheduler = scheduler;
        c
    };
    let mut ws = SimWorkspace::new();
    let warm = Simulation::new_in(cfg.clone(), &mut ws);
    black_box(warm.run_into(&mut ws));
    let mut sim = Simulation::new_in(cfg, &mut ws);
    for _ in 0..1_000 {
        if !sim.step() {
            break;
        }
    }
    let before = allocations();
    while sim.step() {}
    let after = allocations();
    black_box(sim.finish());
    after - before
}

// --- queue-op replay ------------------------------------------------------

enum Op {
    Push(Time),
    Pop,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic schedule/pop sequence with delays drawn from the
/// engine's regimes (frame serialization, propagation, pacing gaps,
/// PAUSE holds, occasional far-future timers), holding the backlog near
/// `depth` pending events.
fn synth_ops(n: usize, depth: usize, seed: u64) -> Vec<Op> {
    let mut rng = seed;
    let mut ops = Vec::with_capacity(2 * n);
    // Track pop order locally so pushes stay at/after the virtual now.
    let mut pending = std::collections::BinaryHeap::new();
    let mut now = 0u64;
    for _ in 0..n {
        let r = splitmix64(&mut rng);
        let push = pending.len() < depth / 2 || (pending.len() < 2 * depth && r & 1 == 0);
        if push {
            let kind = splitmix64(&mut rng) % 100;
            let delta = match kind {
                0..=69 => 1 + splitmix64(&mut rng) % 64_000, // send/arrive: ns..64 us
                70..=89 => 64_000 + splitmix64(&mut rng) % 1_000_000, // pacing: ..1 ms
                90..=98 => 1_000_000 + splitmix64(&mut rng) % 9_000_000, // PAUSE/record
                _ => 100_000_000 + splitmix64(&mut rng) % 900_000_000, // far timer
            };
            let t = now.saturating_add(delta);
            pending.push(std::cmp::Reverse(t));
            ops.push(Op::Push(Time::from_nanos(t)));
        } else if let Some(std::cmp::Reverse(t)) = pending.pop() {
            now = t;
            ops.push(Op::Pop);
        }
    }
    ops
}

/// Wall time of one replay of `ops` (including the final drain).
fn replay(ops: &[Op], scheduler: Scheduler) -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new(scheduler);
    let mut payload = 0u64;
    let t0 = Instant::now();
    for op in ops {
        match op {
            Op::Push(t) => {
                q.schedule(*t, payload);
                payload += 1;
            }
            Op::Pop => {
                black_box(q.pop());
            }
        }
    }
    while let Some(popped) = q.pop() {
        black_box(popped);
    }
    t0.elapsed().as_secs_f64()
}

fn best_replay(ops: &[Op], scheduler: Scheduler, reps: usize) -> f64 {
    (0..reps).map(|_| replay(ops, scheduler)).fold(f64::INFINITY, f64::min)
}

// --- main -----------------------------------------------------------------

#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
fn main() {
    let (t_end, net_t_end, batch_t_end, reps, replay_ops) =
        if quick() { (0.05, 0.05, 0.01, 1, 200_000) } else { (0.4, 0.25, 0.02, 3, 2_000_000) };
    println!("packet engine benchmark: t_end {t_end} s, best of {reps}");

    let mut failures: Vec<String> = Vec::new();

    // 1. Bit-identity across schedulers, engines, workers, fault plans.
    check_sim_equivalence(&mut failures, t_end);
    check_net_equivalence(&mut failures, net_t_end);
    check_batch_equivalence(&mut failures, batch_t_end);
    println!(
        "equivalence: {}",
        if failures.is_empty() { "all reports bit-identical" } else { "FAILURES (see below)" }
    );

    // 2. End-to-end throughput per scenario (informational).
    let mut scenario_json = Vec::new();
    for (name, cfg) in [("limit_cycle", limit_cycle(t_end)), ("incast_16", incast16(t_end))] {
        let events = count_events(&cfg);
        let wheel_s = time_run(&cfg, Scheduler::Wheel, reps);
        let heap_s = time_run(&cfg, Scheduler::Heap, reps);
        let (wheel_eps, heap_eps) = (events as f64 / wheel_s, events as f64 / heap_s);
        println!(
            "  {name}: {events} events — wheel {:.2} M ev/s, heap {:.2} M ev/s ({:.2}x)",
            wheel_eps / 1e6,
            heap_eps / 1e6,
            wheel_eps / heap_eps
        );
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"scenario\": \"{name}\", \"events\": {events}, \
             \"wheel_events_per_sec\": {wheel_eps:.0}, \"heap_events_per_sec\": {heap_eps:.0}, \
             \"end_to_end_speedup\": {:.3}}}",
            wheel_eps / heap_eps
        );
        scenario_json.push(row);
    }

    // 2b. The deep fabric scenario: a generator-compiled 512-sender
    // incast, the workload that flips the end-to-end ratio. Reported
    // here alongside the shallow dumbbell rows; the 1.2x gate on it
    // lives in BENCH_topo.json (topo_engine).
    let fabric_row = {
        let (spec, senders, horizon) = if quick() {
            (TopoSpec::fat_tree(4), 12, 0.02)
        } else {
            (TopoSpec::fat_tree(16), 512, 0.06)
        };
        let traffic = Traffic::Incast { senders, dst: usize::MAX, load: 4.0 };
        let cfg = compile(&spec, &traffic, horizon).expect("fabric compiles");
        let time_net = |scheduler: Scheduler| {
            let mut events = 0;
            let mut best = f64::INFINITY;
            for _ in 0..reps {
                let mut c = cfg.clone();
                c.scheduler = scheduler;
                let mut sim = NetSim::new(c);
                let t0 = Instant::now();
                while sim.step() {}
                best = best.min(t0.elapsed().as_secs_f64());
                events = sim.events_popped();
                black_box(sim.finish());
            }
            (events, best)
        };
        let (events, wheel_s) = time_net(Scheduler::Wheel);
        let (_, heap_s) = time_net(Scheduler::Heap);
        let (wheel_eps, heap_eps) = (events as f64 / wheel_s, events as f64 / heap_s);
        println!(
            "  fabric_incast_{senders}: {events} events — wheel {:.2} M ev/s, heap {:.2} M ev/s \
             ({:.2}x; gated in BENCH_topo.json)",
            wheel_eps / 1e6,
            heap_eps / 1e6,
            wheel_eps / heap_eps
        );
        format!(
            "{{\"scenario\": \"fabric_incast_{senders}\", \"events\": {events}, \
             \"wheel_events_per_sec\": {wheel_eps:.0}, \"heap_events_per_sec\": {heap_eps:.0}, \
             \"end_to_end_speedup\": {:.3}}}",
            wheel_eps / heap_eps
        )
    };
    scenario_json.push(fabric_row);

    // 3. Queue-op replay throughput (the gated microbench): shallow =
    // the engine's own backlog depth, deep = a fan-in switch backlog
    // where the heap's O(log n) bites.
    let shallow = synth_ops(replay_ops, 48, 41);
    let deep = synth_ops(replay_ops, 4_096, 42);
    let _ = best_replay(&shallow[..shallow.len().min(50_000)], Scheduler::Wheel, 1); // warm-up
    let shallow_wheel = best_replay(&shallow, Scheduler::Wheel, reps);
    let shallow_heap = best_replay(&shallow, Scheduler::Heap, reps);
    let deep_wheel = best_replay(&deep, Scheduler::Wheel, reps);
    let deep_heap = best_replay(&deep, Scheduler::Heap, reps);
    let shallow_speedup = shallow_heap / shallow_wheel;
    let deep_speedup = deep_heap / deep_wheel;
    println!(
        "replay (~48 pending):    wheel {:.1} M op/s vs heap {:.1} M op/s — {shallow_speedup:.2}x",
        shallow.len() as f64 / shallow_wheel / 1e6,
        shallow.len() as f64 / shallow_heap / 1e6,
    );
    println!(
        "replay (~4096 pending):  wheel {:.1} M op/s vs heap {:.1} M op/s — {deep_speedup:.2}x",
        deep.len() as f64 / deep_wheel / 1e6,
        deep.len() as f64 / deep_heap / 1e6,
    );

    // 4. Steady-state allocations on a warm workspace.
    let wheel_allocs = steady_state_allocations(Scheduler::Wheel, t_end);
    let heap_allocs = steady_state_allocations(Scheduler::Heap, t_end);
    println!("steady-state allocations: wheel {wheel_allocs}, heap {heap_allocs}");
    if wheel_allocs != 0 {
        failures.push(format!("wheel steady state performed {wheel_allocs} allocation(s)"));
    }
    if !quick() && deep_speedup < MIN_REPLAY_SPEEDUP {
        failures.push(format!(
            "deep-backlog replay speedup {deep_speedup:.2}x below the {MIN_REPLAY_SPEEDUP}x gate"
        ));
    }

    let note = "Speedup is gated on the queue-op replay at a deep (~4096-event) backlog, \
                where the heap pays its O(log n); the dumbbell end-to-end rows run the full \
                engine at a shallow backlog, so their ratio is reported but not gated. The \
                fabric_incast row runs the generator-compiled 512-sender incast where the \
                fan-in keeps the backlog deep end-to-end — that ratio is gated at 1.2x in \
                BENCH_topo.json. Steady-state allocations are counted by this binary's \
                wrapping allocator after a warm-up run recycles every buffer through \
                SimWorkspace.";
    let json = format!(
        "{{\n  \"quick\": {},\n  \"reps\": {reps},\n  \"scenarios\": [{}],\n  \
         \"replay\": {{\"ops\": {}, \"shallow_speedup\": {shallow_speedup:.3}, \
         \"deep_speedup\": {deep_speedup:.3}, \"gate\": {MIN_REPLAY_SPEEDUP}}},\n  \
         \"steady_state_allocations\": {{\"wheel\": {wheel_allocs}, \"heap\": {heap_allocs}}},\n  \
         \"equivalence_failures\": {},\n  \"note\": \"{note}\"\n}}\n",
        quick(),
        scenario_json.join(", "),
        shallow.len(),
        failures.len(),
    );
    let out = out_dir();
    let path = out.join("BENCH_packet.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
