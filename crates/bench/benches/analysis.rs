//! Performance of the analytic layer: closed-form flows, first-round
//! extrema, the stability criterion, and criterion-atlas throughput —
//! the operations a network-planning tool would run interactively.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bcn::closed_form::RegionFlow;
use bcn::model::Region;
use bcn::rounds::{first_round, round_ratio};
use bcn::stability::{criterion, exact_verdict, theorem1_required_buffer};
use bcn::{BcnFluid, BcnParams};

fn bench_closed_form(c: &mut Criterion) {
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let flow = RegionFlow::from_kn(params.k(), sys.region_n(Region::Increase));
    let z0 = params.initial_point();

    let mut group = c.benchmark_group("closed_form");
    group.bench_function("flow_at", |b| {
        b.iter(|| black_box(flow.at(black_box(0.01), black_box(z0))))
    });
    group.bench_function("time_to_switching_line", |b| {
        b.iter(|| black_box(flow.time_to_switching_line(black_box(z0), params.k(), 1.0)))
    });
    group.finish();
}

fn bench_stability(c: &mut Criterion) {
    let params = BcnParams::test_defaults();
    let mut group = c.benchmark_group("stability");
    group.bench_function("theorem1", |b| {
        b.iter(|| black_box(theorem1_required_buffer(black_box(&params))))
    });
    group.bench_function("first_round", |b| b.iter(|| black_box(first_round(black_box(&params)))));
    group.bench_function("round_ratio", |b| b.iter(|| black_box(round_ratio(black_box(&params)))));
    group.bench_function("criterion", |b| b.iter(|| black_box(criterion(black_box(&params)))));
    group.bench_function("exact_verdict_20_legs", |b| {
        b.iter(|| black_box(exact_verdict(black_box(&params), 20)))
    });
    group.finish();
}

fn bench_atlas_row(c: &mut Criterion) {
    // One row of the (Gi, Gd) atlas: 13 criterion+exact evaluations.
    let base = BcnParams::test_defaults().with_buffer(1.5e5);
    c.bench_function("atlas_row_13_cells", |b| {
        b.iter(|| {
            let mut granted = 0u32;
            for i in 0..13 {
                let gi = base.gi * 0.05 * 400.0_f64.powf(f64::from(i) / 12.0);
                let p = base.clone().with_gi(gi);
                if criterion(&p).is_guaranteed() {
                    granted += 1;
                }
                if exact_verdict(&p, 40).strongly_stable {
                    granted += 1;
                }
            }
            black_box(granted)
        })
    });
}

criterion_group!(benches, bench_closed_form, bench_stability, bench_atlas_row);
criterion_main!(benches);
