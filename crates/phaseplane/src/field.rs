//! Vector-field grid sampling for quiver-style phase-plane figures.

use crate::system::PlaneSystem;

/// One sampled arrow of a vector field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldSample {
    /// Sample point.
    pub point: [f64; 2],
    /// Raw field value at the point.
    pub value: [f64; 2],
    /// Field value normalised to unit length (zero where the field
    /// vanishes), convenient for drawing equally sized arrows.
    pub unit: [f64; 2],
}

/// Samples `sys` on a uniform `nx` × `ny` grid over the rectangle
/// `[x0, x1] × [y0, y1]`.
///
/// Points are produced row by row (y-major), `nx * ny` of them. Cells
/// are evaluated in parallel across the configured `parkit` worker
/// count; each sample is a pure function of its grid index, so the
/// result is identical (bitwise) at any thread count.
///
/// # Panics
///
/// Panics if either grid dimension is below 2 or the rectangle is empty.
#[must_use]
pub fn sample_grid<S: PlaneSystem + Sync>(
    sys: &S,
    x_range: (f64, f64),
    y_range: (f64, f64),
    nx: usize,
    ny: usize,
) -> Vec<FieldSample> {
    let (x0, x1) = x_range;
    let (y0, y1) = y_range;
    assert!(nx >= 2 && ny >= 2, "grid must be at least 2x2");
    assert!(x1 > x0 && y1 > y0, "rectangle must be non-empty");
    parkit::par_map_indexed(nx * ny, |idx| {
        let (i, j) = (idx % nx, idx / nx);
        let y = y0 + (y1 - y0) * j as f64 / (ny - 1) as f64;
        let x = x0 + (x1 - x0) * i as f64 / (nx - 1) as f64;
        let p = [x, y];
        let v = sys.deriv(p);
        let n = (v[0] * v[0] + v[1] * v[1]).sqrt();
        let unit = if n > 0.0 { [v[0] / n, v[1] / n] } else { [0.0, 0.0] };
        FieldSample { point: p, value: v, unit }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_has_expected_size_and_corners() {
        let sys = |p: [f64; 2]| [p[1], -p[0]];
        let grid = sample_grid(&sys, (-1.0, 1.0), (0.0, 2.0), 3, 5);
        assert_eq!(grid.len(), 15);
        assert_eq!(grid[0].point, [-1.0, 0.0]);
        assert_eq!(grid.last().unwrap().point, [1.0, 2.0]);
    }

    #[test]
    fn unit_vectors_are_unit_or_zero() {
        let sys = |p: [f64; 2]| [p[0], p[1]]; // vanishes at origin
        let grid = sample_grid(&sys, (-1.0, 1.0), (-1.0, 1.0), 3, 3);
        for s in &grid {
            let n = (s.unit[0] * s.unit[0] + s.unit[1] * s.unit[1]).sqrt();
            if s.point == [0.0, 0.0] {
                assert_eq!(s.unit, [0.0, 0.0]);
            } else {
                assert!((n - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn parallel_sampling_is_bitwise_identical_to_serial() {
        // The same grid through an explicit 1-worker run and a
        // many-worker run must agree to the bit, whatever
        // DCE_BCN_THREADS says for the default path.
        let sys = |p: [f64; 2]| [p[1] * (p[0] * 3.7).sin(), -p[0] * (p[1] * 0.9).cos()];
        let serial: Vec<FieldSample> = parkit::par_map_indexed_in(1, 9 * 7, |idx| {
            let (i, j) = (idx % 9, idx / 9);
            let y = -2.0 + 4.0 * j as f64 / 6.0;
            let x = -1.0 + 2.0 * i as f64 / 8.0;
            let p = [x, y];
            let v = sys.deriv(p);
            let n = (v[0] * v[0] + v[1] * v[1]).sqrt();
            let unit = if n > 0.0 { [v[0] / n, v[1] / n] } else { [0.0, 0.0] };
            FieldSample { point: p, value: v, unit }
        });
        let grid = sample_grid(&sys, (-1.0, 1.0), (-2.0, 2.0), 9, 7);
        assert_eq!(grid.len(), serial.len());
        for (a, b) in grid.iter().zip(&serial) {
            assert_eq!(a.point, b.point);
            assert!(a.value[0].to_bits() == b.value[0].to_bits());
            assert!(a.value[1].to_bits() == b.value[1].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "at least 2x2")]
    fn rejects_degenerate_grid() {
        let sys = |p: [f64; 2]| p;
        let _ = sample_grid(&sys, (0.0, 1.0), (0.0, 1.0), 1, 5);
    }
}
