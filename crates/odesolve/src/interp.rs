//! Dense output between accepted steps via cubic Hermite interpolation.

/// Cubic Hermite interpolant over one accepted step `[t0, t1]`.
///
/// Built from the state and derivative at both step endpoints, which every
/// [`crate::Stepper`] provides; third-order accurate, which is ample for
/// event location and plotting (the step itself already satisfies the error
/// tolerance).
#[derive(Debug, Clone, PartialEq)]
pub struct CubicHermite<const N: usize> {
    t0: f64,
    t1: f64,
    y0: [f64; N],
    y1: [f64; N],
    f0: [f64; N],
    f1: [f64; N],
}

impl<const N: usize> CubicHermite<N> {
    /// Builds the interpolant for the step from `(t0, y0, f0)` to
    /// `(t1, y1, f1)` where `f = dy/dt` at the respective endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `t1 <= t0`.
    #[must_use]
    pub fn new(t0: f64, y0: [f64; N], f0: [f64; N], t1: f64, y1: [f64; N], f1: [f64; N]) -> Self {
        assert!(t1 > t0, "interpolation interval must have positive length");
        Self { t0, t1, y0, y1, f0, f1 }
    }

    /// Start of the interpolation interval.
    #[must_use]
    pub fn t_start(&self) -> f64 {
        self.t0
    }

    /// End of the interpolation interval.
    #[must_use]
    pub fn t_end(&self) -> f64 {
        self.t1
    }

    /// Evaluates the interpolated state at `t` (clamped to the interval).
    #[must_use]
    pub fn eval(&self, t: f64) -> [f64; N] {
        let h = self.t1 - self.t0;
        let s = ((t - self.t0) / h).clamp(0.0, 1.0);
        let s2 = s * s;
        let s3 = s2 * s;
        let h00 = 2.0 * s3 - 3.0 * s2 + 1.0;
        let h10 = s3 - 2.0 * s2 + s;
        let h01 = -2.0 * s3 + 3.0 * s2;
        let h11 = s3 - s2;
        let mut out = [0.0; N];
        for (i, o) in out.iter_mut().enumerate() {
            *o = h00 * self.y0[i] + h10 * h * self.f0[i] + h01 * self.y1[i] + h11 * h * self.f1[i];
        }
        out
    }

    /// Evaluates the interpolated derivative `dy/dt` at `t`.
    #[must_use]
    pub fn eval_deriv(&self, t: f64) -> [f64; N] {
        let h = self.t1 - self.t0;
        let s = ((t - self.t0) / h).clamp(0.0, 1.0);
        let s2 = s * s;
        let dh00 = (6.0 * s2 - 6.0 * s) / h;
        let dh10 = 3.0 * s2 - 4.0 * s + 1.0;
        let dh01 = (-6.0 * s2 + 6.0 * s) / h;
        let dh11 = 3.0 * s2 - 2.0 * s;
        let mut out = [0.0; N];
        for (i, o) in out.iter_mut().enumerate() {
            *o = dh00 * self.y0[i] + dh10 * self.f0[i] + dh01 * self.y1[i] + dh11 * self.f1[i];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_endpoints() {
        let h = CubicHermite::new(1.0, [2.0], [0.5], 3.0, [4.0], [-0.5]);
        assert!((h.eval(1.0)[0] - 2.0).abs() < 1e-14);
        assert!((h.eval(3.0)[0] - 4.0).abs() < 1e-14);
        assert!((h.eval_deriv(1.0)[0] - 0.5).abs() < 1e-13);
        assert!((h.eval_deriv(3.0)[0] + 0.5).abs() < 1e-13);
    }

    #[test]
    fn exactly_reproduces_cubics() {
        // p(t) = t^3 - 2t + 1, p'(t) = 3t^2 - 2
        let p = |t: f64| t * t * t - 2.0 * t + 1.0;
        let dp = |t: f64| 3.0 * t * t - 2.0;
        let h = CubicHermite::new(0.0, [p(0.0)], [dp(0.0)], 2.0, [p(2.0)], [dp(2.0)]);
        for k in 0..=20 {
            let t = 0.1 * k as f64;
            assert!((h.eval(t)[0] - p(t)).abs() < 1e-12, "t = {t}");
            assert!((h.eval_deriv(t)[0] - dp(t)).abs() < 1e-11, "t = {t}");
        }
    }

    #[test]
    fn clamps_outside_interval() {
        let h = CubicHermite::new(0.0, [1.0], [0.0], 1.0, [2.0], [0.0]);
        assert_eq!(h.eval(-5.0), h.eval(0.0));
        assert_eq!(h.eval(9.0), h.eval(1.0));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn rejects_empty_interval() {
        let _ = CubicHermite::new(1.0, [0.0], [0.0], 1.0, [0.0], [0.0]);
    }
}
