//! The `dcebcn` binary: thin wrapper over the `cli` library.
//!
//! Failures are lifted into the workspace-wide [`dce_bcn::Error`]
//! taxonomy so each failure family maps to a distinct exit code (2
//! usage, 3 model/analysis, 4 solver, 5 Poincaré, 6 wire, 7 simulator
//! config, 8 I/O, 9 batch fail-fast, 10 watchdog timeout, 11 replay
//! mismatch).

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            let e = dce_bcn::Error::from(e);
            telemetry::log_line!("{e}");
            std::process::exit(e.exit_code());
        }
    }
}
