//! Regenerates the paper's Fig. 6 (Case 1 dynamics).

fn main() {
    if let Err(e) = bench::figures::fig06::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
