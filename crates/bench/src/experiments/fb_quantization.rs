//! FB-field quantization ablation — bridging BCN to QCN.
//!
//! The paper's Fig. 2 carries `sigma` in a finite FB field, and the QCN
//! successor squeezes it to 6 bits. How much precision does the control
//! loop actually need? This sweep quantizes the congestion point's
//! feedback to 3–16 bits (full precision as the reference) and measures
//! the queue's steady-state behaviour: coarse feedback injects a
//! dead-band/limit-cycle wobble around `q0`, fine feedback recovers the
//! continuous loop.

use std::path::Path;

use dcesim::cp::FbQuant;
use dcesim::sim::{fluid_validation_params, Control, SimConfig, Simulation};
use dcesim::time::Duration;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("FB-field quantization ablation (BCN -> QCN precision bridge)");
    let params = fluid_validation_params();
    let t_end = 0.6;
    let tail_from = 0.3;

    let mut table = Table::new(&[
        "FB bits",
        "tail mean q / q0",
        "tail rms wobble / q0",
        "drops",
        "feedback msgs",
    ]);
    let mut csv = Csv::new(&["bits", "tail_mean", "tail_rms", "drops"]);
    let mut plot = SvgPlot::new(
        "Steady-state queue wobble vs FB precision",
        "FB field bits (32 = full precision)",
        "tail RMS wobble / q0",
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();

    for bits in [3u32, 4, 5, 6, 8, 12, 32] {
        let mut cfg = SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), t_end);
        if let Control::Bcn { cp, .. } = &mut cfg.control {
            if bits < 32 {
                // Range: the largest |sigma| the loop meaningfully sees
                // (a few q0 of offset plus derivative term).
                cp.fb_quant = Some(FbQuant { bits, range_bits: 4.0 * params.q0 });
            }
        }
        let report = Simulation::new(cfg).run();
        let m = &report.metrics;
        let tail: Vec<f64> = m
            .queue
            .times()
            .iter()
            .zip(m.queue.values())
            .filter(|(t, _)| **t >= tail_from)
            .map(|(_, q)| *q)
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        let rms = (tail.iter().map(|q| (q - mean).powi(2)).sum::<f64>() / tail.len() as f64).sqrt();
        table.row(&[
            if bits == 32 { "full".into() } else { bits.to_string() },
            format!("{:.3}", mean / params.q0),
            format!("{:.4}", rms / params.q0),
            m.dropped_frames.to_string(),
            m.feedback_messages.to_string(),
        ]);
        csv.row(&[f64::from(bits), mean, rms, m.dropped_frames as f64]);
        xs.push(f64::from(bits));
        ys.push(rms / params.q0);
    }
    print!("{table}");
    println!(
        "the wobble collapses by ~6 bits of FB precision — consistent with QCN's\n\
         choice of a 6-bit quantized feedback field."
    );

    csv.save(out.join("exp_fb_quantization.csv"))?;
    println!("wrote {}", out.join("exp_fb_quantization.csv").display());
    plot = plot.with_series(Series::scatter("tail RMS", &xs, &ys, COLOR_CYCLE[0]));
    save_plot(&plot, out, "exp_fb_quantization.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fbq_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_fb_quantization.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
