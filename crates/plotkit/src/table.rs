//! Aligned text tables for printing paper-style result rows.

/// A simple aligned text table.
///
/// # Example
///
/// ```
/// use plotkit::Table;
///
/// let mut t = Table::new(&["case", "verdict"]);
/// t.row(&["case 1".into(), "stable".into()]);
/// let s = t.to_string();
/// assert!(s.contains("case 1"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column names.
    ///
    /// # Panics
    ///
    /// Panics if no columns are given.
    #[must_use]
    pub fn new(columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "need at least one column");
        Self { header: columns.iter().map(ToString::to_string).collect(), rows: Vec::new() }
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the column count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width must match the header");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: formats each `f64` with engineering-style precision.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn row_f64(&mut self, cells: &[f64]) {
        let formatted: Vec<String> = cells.iter().map(|v| format_value(*v)).collect();
        self.row(&formatted);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn format_value(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".into()
    } else if !(1e-3..1e7).contains(&a) {
        format!("{v:.4e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.4}")
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let print_row = |f: &mut std::fmt::Formatter<'_>, cells: &[String]| {
            let line: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            writeln!(f, "| {} |", line.join(" | "))
        };
        print_row(f, &self.header)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "|-{}-|", sep.join("-|-"))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = Table::new(&["a", "long header"]);
        t.row(&["xxxx".into(), "y".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0].len(), lines[2].len(), "{s}");
        assert!(lines[1].starts_with("|-"));
    }

    #[test]
    fn f64_rows_are_formatted() {
        let mut t = Table::new(&["v"]);
        t.row_f64(&[1.25e9]);
        t.row_f64(&[0.5]);
        t.row_f64(&[0.0]);
        let s = t.to_string();
        assert!(s.contains("1.2500e9"));
        assert!(s.contains("0.5000"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }
}
