//! Stability atlas: an ASCII map of the `(Gi, Gd)` gain plane showing
//! where BCN is strongly stable, where only classical analysis says
//! "stable", and where each of the paper's cases lives.
//!
//! Run with `cargo run --release --example stability_atlas`.

use bcn::cases::classify_params;
use bcn::stability::{criterion, exact_verdict, theorem1_holds};
use bcn::{BcnParams, CaseId};

fn main() {
    let base = BcnParams::test_defaults().with_buffer(1.5e5);
    let n = 21;

    println!("gain-plane atlas ({}x{} cells), buffer = {:.0} bits", n, n, base.buffer);
    println!(
        "rows: Gd from {:.5} (bottom) x400; cols: Gi from {:.4} x400 (log-spaced)",
        base.gd * 0.05,
        base.gi * 0.05
    );
    println!();
    println!("legend:  # strongly stable (criterion proves it)");
    println!("         + strongly stable (exact trace only — criterion is conservative)");
    println!("         . NOT strongly stable (but classical linear analysis says stable)");
    println!();

    let mut case_marks = String::new();
    for j in (0..n).rev() {
        let gd = (base.gd * 0.05 * 400.0_f64.powf(j as f64 / (n - 1) as f64)).min(1.0);
        let mut row = String::new();
        for i in 0..n {
            let gi = base.gi * 0.05 * 400.0_f64.powf(i as f64 / (n - 1) as f64);
            let p = base.clone().with_gi(gi).with_gd(gd);
            let guaranteed = criterion(&p).is_guaranteed();
            let exact = exact_verdict(&p, 40).strongly_stable;
            row.push(match (guaranteed, exact) {
                (true, _) => '#',
                (false, true) => '+',
                (false, false) => '.',
            });
        }
        println!("  {row}");
        if j == n / 2 {
            // Record the case boundary along the middle row.
            for i in 0..n {
                let gi = base.gi * 0.05 * 400.0_f64.powf(i as f64 / (n - 1) as f64);
                let p = base.clone().with_gi(gi).with_gd(gd);
                case_marks.push(match classify_params(&p).case {
                    CaseId::Case1 => '1',
                    CaseId::Case2 => '2',
                    CaseId::Case3 => '3',
                    CaseId::Case4 => '4',
                    CaseId::Case5 => '5',
                });
            }
        }
    }
    println!();
    println!("cases along the middle Gd row: {case_marks}");

    // Quantify the three-way comparison.
    let mut stats = (0u32, 0u32, 0u32, 0u32);
    for i in 0..n {
        for j in 0..n {
            let gi = base.gi * 0.05 * 400.0_f64.powf(i as f64 / (n - 1) as f64);
            let gd = (base.gd * 0.05 * 400.0_f64.powf(j as f64 / (n - 1) as f64)).min(1.0);
            let p = base.clone().with_gi(gi).with_gd(gd);
            stats.0 += 1;
            if exact_verdict(&p, 40).strongly_stable {
                stats.1 += 1;
            }
            if criterion(&p).is_guaranteed() {
                stats.2 += 1;
            }
            if theorem1_holds(&p) {
                stats.3 += 1;
            }
        }
    }
    println!();
    println!(
        "of {} cells: {} strongly stable; criterion proves {}; Theorem 1 proves {}.",
        stats.0, stats.1, stats.2, stats.3
    );
    println!("classical linear analysis approves all {} — blind to the buffer entirely.", stats.0);
}
