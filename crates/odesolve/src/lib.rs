//! Ordinary differential equation solvers with event location, built for
//! switched (hybrid) dynamical systems.
//!
//! This crate is the numerical substrate of the DCE-BCN reproduction. The
//! BCN congestion-control fluid model is a *piecewise-smooth* second-order
//! autonomous system: the vector field changes discontinuously across the
//! switching line `sigma(x, y) = 0`. Integrating such a system accurately
//! requires (a) a solid smooth-region integrator and (b) precise location of
//! the time at which a trajectory crosses the switching surface, so the
//! integration can be stopped exactly on the surface and restarted with the
//! other vector field.
//!
//! # Contents
//!
//! * [`Ode`] — the right-hand-side trait, generic over the (const) state
//!   dimension. Implemented for plain closures.
//! * [`Rk4`] — classical fixed-step fourth-order Runge–Kutta.
//! * [`Dopri5`] — adaptive Dormand–Prince 5(4) with PI step-size control.
//! * [`Bs23`] — adaptive Bogacki–Shampine 3(2) for loose tolerances and
//!   independent cross-checking.
//! * [`EventFn`] and [`EventSpec`] — scalar guard functions whose
//!   sign changes are located to high precision (Brent root finding on a
//!   cubic Hermite interpolant of the accepted step).
//! * [`integrate`] / [`integrate_with_events`] — one-shot drivers returning
//!   a dense [`Solution`].
//! * [`hybrid`] — a mode-switching driver for piecewise-smooth systems.
//!
//! # Example
//!
//! Integrate exponential decay and check against the closed form:
//!
//! ```
//! use odesolve::{integrate, Dopri5, Options};
//!
//! let sol = integrate(
//!     &|_t: f64, y: &[f64; 1]| [-y[0]],
//!     0.0,
//!     [1.0],
//!     5.0,
//!     &mut Dopri5::new(),
//!     &Options::default(),
//! )
//! .unwrap();
//! let y_end = sol.last_state()[0];
//! assert!((y_end - (-5.0f64).exp()).abs() < 1e-6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bs23;
mod dopri5;
mod driver;
mod error;
mod event;
pub mod hybrid;
mod interp;
mod rk4;
mod solution;
mod stepper;
pub mod vecn;

pub use bs23::Bs23;
pub use dopri5::Dopri5;
pub use driver::{integrate, integrate_with_events, integrate_with_events_telemetry, Options};
pub use error::SolveError;
pub use event::{locate_zero, locate_zero_counted, Direction, EventFn, EventOccurrence, EventSpec};
pub use interp::CubicHermite;
pub use rk4::Rk4;
pub use solution::Solution;
pub use stepper::{StepOutcome, Stepper};

/// Right-hand side of an autonomous or non-autonomous ODE
/// `dy/dt = f(t, y)` with state dimension `N`.
///
/// The trait is implemented for any `Fn(f64, &[f64; N]) -> [f64; N]`, so
/// plain closures work everywhere an `Ode` is expected.
pub trait Ode<const N: usize> {
    /// Evaluates the vector field at time `t` and state `y`.
    fn rhs(&self, t: f64, y: &[f64; N]) -> [f64; N];
}

impl<F, const N: usize> Ode<N> for F
where
    F: Fn(f64, &[f64; N]) -> [f64; N],
{
    fn rhs(&self, t: f64, y: &[f64; N]) -> [f64; N] {
        self(t, y)
    }
}
