//! Batched multi-seed simulation runs.
//!
//! The simulator itself is fully deterministic — same [`SimConfig`],
//! same trajectory. Sensitivity studies instead perturb the *workload*:
//! each seed deterministically jitters every flow's start time and
//! initial rate (a splitmix64 hash of `(seed, flow, field)`), so a batch
//! explores a reproducible neighbourhood of the base scenario. Seeds run
//! in parallel across the configured worker count (see the `parkit`
//! crate); each run carries its own [`Telemetry`] shard and the shards
//! are merged in seed order afterwards, so the aggregate telemetry is
//! identical at any thread count.

use telemetry::{Telemetry, TelemetryLevel};

use crate::sim::{SimConfig, SimReport, Simulation};
use crate::time::Time;

/// A multi-seed batch around a base scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// The unperturbed scenario.
    pub base: SimConfig,
    /// One simulation per seed. Seed values are free-form; equal seeds
    /// produce equal runs.
    pub seeds: Vec<u64>,
    /// Telemetry level for every run (`Off` skips the sinks entirely).
    pub level: TelemetryLevel,
    /// Maximum start-time jitter in seconds: each flow's start moves
    /// forward by `u * start_jitter_secs` with `u` uniform in `[0, 1)`.
    pub start_jitter_secs: f64,
    /// Relative initial-rate jitter: each flow's rate is scaled by
    /// `1 + (2u - 1) * rate_jitter_frac`.
    pub rate_jitter_frac: f64,
}

impl BatchConfig {
    /// A batch over `n_seeds` consecutive seeds with mild jitter (5% of
    /// the simulated horizon in start time, 10% in initial rate).
    #[must_use]
    pub fn quick(base: SimConfig, n_seeds: u64) -> Self {
        let horizon = base.t_end.as_secs();
        Self {
            base,
            seeds: (0..n_seeds).collect(),
            level: TelemetryLevel::Off,
            start_jitter_secs: 0.05 * horizon,
            rate_jitter_frac: 0.1,
        }
    }
}

/// The result of one batch: per-seed reports in seed order plus the
/// merged telemetry aggregate.
#[derive(Debug)]
pub struct BatchReport {
    /// The seeds, in the order the reports are stored.
    pub seeds: Vec<u64>,
    /// One report per seed, input order preserved.
    pub reports: Vec<SimReport>,
    /// All per-seed telemetry shards merged in seed order (counters
    /// added, histograms combined bucket-wise, traces interleaved by
    /// sim time); `None` when the level disables collection.
    pub telemetry: Option<Telemetry>,
}

/// splitmix64 — the standard 64-bit finalizer; good avalanche, no state.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic uniform sample in `[0, 1)` keyed by `(seed, flow,
/// field)`.
fn unit(seed: u64, flow: u64, field: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(flow ^ splitmix64(field)));
    // 53 high bits -> the full f64 mantissa range.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The base scenario perturbed for one seed: every flow's start time and
/// initial rate jittered deterministically. Seed-stable: the same
/// `(cfg, seed)` pair always yields the same configuration.
#[must_use]
pub fn seeded_config(cfg: &BatchConfig, seed: u64) -> SimConfig {
    let mut out = cfg.base.clone();
    for (i, flow) in out.flows.iter_mut().enumerate() {
        let i = i as u64;
        let ds = unit(seed, i, 0) * cfg.start_jitter_secs;
        let dr = 1.0 + (2.0 * unit(seed, i, 1) - 1.0) * cfg.rate_jitter_frac;
        flow.start = Time::from_secs(flow.start.as_secs() + ds);
        flow.initial_rate *= dr;
    }
    out
}

/// Runs every seed of the batch, in parallel across the configured
/// worker count, and merges the telemetry shards in seed order.
///
/// Determinism: each seed's trajectory depends only on its
/// [`seeded_config`], and results land at their seed's index, so the
/// batch output — including the merged telemetry — is identical at any
/// thread count (`DCE_BCN_THREADS=1` included).
#[must_use]
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    let reports = parkit::par_map(&cfg.seeds, |&seed| {
        let sim_cfg = seeded_config(cfg, seed);
        if cfg.level.enabled() {
            Simulation::with_telemetry(sim_cfg, Telemetry::new(cfg.level)).run()
        } else {
            Simulation::new(sim_cfg).run()
        }
    });
    let telemetry = cfg.level.enabled().then(|| {
        let mut agg = Telemetry::new(cfg.level);
        for report in &reports {
            if let Some(shard) = &report.telemetry {
                agg.merge(shard);
            }
        }
        agg
    });
    BatchReport { seeds: cfg.seeds.clone(), reports, telemetry }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64) -> BatchConfig {
        let mut base = SimConfig::fluid_validation_default();
        base.t_end = Time::from_secs(0.02);
        BatchConfig { level: TelemetryLevel::Full, ..BatchConfig::quick(base, n) }
    }

    #[test]
    fn seeded_configs_are_deterministic_and_distinct() {
        let cfg = batch(2);
        let a = seeded_config(&cfg, 7);
        let b = seeded_config(&cfg, 7);
        assert_eq!(a, b, "same seed must reproduce the same scenario");
        let c = seeded_config(&cfg, 8);
        assert_ne!(a.flows, c.flows, "different seeds must differ");
        for (orig, jit) in cfg.base.flows.iter().zip(&a.flows) {
            assert!(jit.start >= orig.start);
            assert!(jit.start.as_secs() <= orig.start.as_secs() + cfg.start_jitter_secs);
            let ratio = jit.initial_rate / orig.initial_rate;
            assert!((ratio - 1.0).abs() <= cfg.rate_jitter_frac + 1e-12);
        }
    }

    #[test]
    fn zero_jitter_reproduces_the_base_scenario() {
        let mut cfg = batch(1);
        cfg.start_jitter_secs = 0.0;
        cfg.rate_jitter_frac = 0.0;
        assert_eq!(seeded_config(&cfg, 123), cfg.base);
    }

    #[test]
    fn batch_results_are_identical_at_any_thread_count() {
        let cfg = batch(4);
        parkit::set_threads(1);
        let serial = run_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_batch(&cfg);
        parkit::set_threads(0);
        assert_eq!(serial.reports.len(), 4);
        for (s, p) in serial.reports.iter().zip(&parallel.reports) {
            assert_eq!(s.metrics.delivered_frames, p.metrics.delivered_frames);
            assert_eq!(s.final_rates, p.final_rates);
            assert_eq!(s.metrics.queue.values(), p.metrics.queue.values());
        }
        let (st, pt) = (serial.telemetry.unwrap(), parallel.telemetry.unwrap());
        assert_eq!(st.metrics.counters().count(), pt.metrics.counters().count());
        for ((an, av), (bn, bv)) in st.metrics.counters().zip(pt.metrics.counters()) {
            assert_eq!((an, av), (bn, bv));
        }
        assert_eq!(st.trace.len(), pt.trace.len());
    }

    #[test]
    fn merged_trace_is_ordered_by_sim_time() {
        let report = run_batch(&batch(3));
        let tel = report.telemetry.expect("telemetry requested");
        let times: Vec<f64> = tel.trace.iter().map(telemetry::Event::time).collect();
        assert!(!times.is_empty(), "batch runs should emit events");
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "trace not time-sorted");
    }

    #[test]
    fn telemetry_off_skips_the_aggregate() {
        let mut cfg = batch(2);
        cfg.level = TelemetryLevel::Off;
        let report = run_batch(&cfg);
        assert!(report.telemetry.is_none());
        assert!(report.reports.iter().all(|r| r.telemetry.is_none()));
    }
}
