//! Regenerates the heterogeneous-model fairness experiment.

fn main() {
    if let Err(e) = bench::experiments::hetero_fairness::main() {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
