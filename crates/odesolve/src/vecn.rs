//! Small fixed-size vector arithmetic on `[f64; N]`.
//!
//! The solvers in this crate work on stack-allocated arrays. These free
//! functions keep the stepper implementations readable without pulling in a
//! linear-algebra dependency.

/// Returns `a + b` element-wise.
#[inline]
#[must_use]
pub fn add<const N: usize>(a: &[f64; N], b: &[f64; N]) -> [f64; N] {
    let mut out = [0.0; N];
    for i in 0..N {
        out[i] = a[i] + b[i];
    }
    out
}

/// Returns `a - b` element-wise.
#[inline]
#[must_use]
pub fn sub<const N: usize>(a: &[f64; N], b: &[f64; N]) -> [f64; N] {
    let mut out = [0.0; N];
    for i in 0..N {
        out[i] = a[i] - b[i];
    }
    out
}

/// Returns `s * a` element-wise.
#[inline]
#[must_use]
pub fn scale<const N: usize>(s: f64, a: &[f64; N]) -> [f64; N] {
    let mut out = [0.0; N];
    for i in 0..N {
        out[i] = s * a[i];
    }
    out
}

/// Returns `a + s * b` (axpy).
#[inline]
#[must_use]
pub fn axpy<const N: usize>(a: &[f64; N], s: f64, b: &[f64; N]) -> [f64; N] {
    let mut out = [0.0; N];
    for i in 0..N {
        out[i] = a[i] + s * b[i];
    }
    out
}

/// Accumulates `acc += s * b` in place.
#[inline]
pub fn axpy_mut<const N: usize>(acc: &mut [f64; N], s: f64, b: &[f64; N]) {
    for i in 0..N {
        acc[i] += s * b[i];
    }
}

/// Euclidean norm of `a`.
#[inline]
#[must_use]
pub fn norm<const N: usize>(a: &[f64; N]) -> f64 {
    a.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Maximum absolute component of `a` (infinity norm).
#[inline]
#[must_use]
pub fn norm_inf<const N: usize>(a: &[f64; N]) -> f64 {
    a.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
}

/// Weighted RMS error norm used by adaptive step control:
/// `sqrt(mean((err_i / (atol + rtol * max(|y0_i|, |y1_i|)))^2))`.
#[inline]
#[must_use]
pub fn error_norm<const N: usize>(
    err: &[f64; N],
    y0: &[f64; N],
    y1: &[f64; N],
    atol: f64,
    rtol: f64,
) -> f64 {
    let mut acc = 0.0;
    for i in 0..N {
        let sc = atol + rtol * y0[i].abs().max(y1[i].abs());
        let e = err[i] / sc;
        acc += e * e;
    }
    (acc / N as f64).sqrt()
}

/// Returns `true` when every component of `a` is finite.
#[inline]
#[must_use]
pub fn all_finite<const N: usize>(a: &[f64; N]) -> bool {
    a.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = [1.0, -2.0, 3.5];
        let b = [0.5, 4.0, -1.0];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn axpy_matches_manual() {
        let a = [1.0, 2.0];
        let b = [10.0, -10.0];
        assert_eq!(axpy(&a, 0.5, &b), [6.0, -3.0]);
        let mut acc = a;
        axpy_mut(&mut acc, 0.5, &b);
        assert_eq!(acc, [6.0, -3.0]);
    }

    #[test]
    fn norms() {
        let a = [3.0, -4.0];
        assert!((norm(&a) - 5.0).abs() < 1e-15);
        assert_eq!(norm_inf(&a), 4.0);
    }

    #[test]
    fn error_norm_scales_with_tolerance() {
        let err = [1e-6, 1e-6];
        let y = [1.0, 1.0];
        let tight = error_norm(&err, &y, &y, 1e-9, 1e-9);
        let loose = error_norm(&err, &y, &y, 1e-3, 1e-3);
        assert!(tight > 1.0, "error should exceed tight tolerance");
        assert!(loose < 1.0, "error should be within loose tolerance");
    }

    #[test]
    fn finiteness_check() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY, 0.0]));
    }
}
