//! The telemetry verbosity ladder.

use std::fmt;
use std::str::FromStr;

/// How much instrumentation a run collects.
///
/// * [`Off`](TelemetryLevel::Off) — every hook is a single branch; no
///   metric or event is recorded.
/// * [`Summary`](TelemetryLevel::Summary) — counters, gauges, and
///   histograms accumulate, but no per-event trace is kept.
/// * [`Full`](TelemetryLevel::Full) — metrics plus the bounded
///   ring-buffer event trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TelemetryLevel {
    /// No collection at all (the hot-path default).
    #[default]
    Off,
    /// Aggregate metrics only.
    Summary,
    /// Aggregate metrics plus the typed event trace.
    Full,
}

impl TelemetryLevel {
    /// Whether any collection happens at this level.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != TelemetryLevel::Off
    }

    /// Whether per-event tracing happens at this level.
    #[must_use]
    pub fn traces(self) -> bool {
        self == TelemetryLevel::Full
    }
}

impl fmt::Display for TelemetryLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TelemetryLevel::Off => "off",
            TelemetryLevel::Summary => "summary",
            TelemetryLevel::Full => "full",
        })
    }
}

impl FromStr for TelemetryLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(TelemetryLevel::Off),
            "summary" => Ok(TelemetryLevel::Summary),
            "full" => Ok(TelemetryLevel::Full),
            other => {
                Err(format!("unknown telemetry level `{other}` (expected off, summary, or full)"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_level() {
        for level in [TelemetryLevel::Off, TelemetryLevel::Summary, TelemetryLevel::Full] {
            assert_eq!(level.to_string().parse::<TelemetryLevel>().unwrap(), level);
        }
        assert!("verbose".parse::<TelemetryLevel>().is_err());
    }

    #[test]
    fn ladder_predicates() {
        assert!(!TelemetryLevel::Off.enabled());
        assert!(TelemetryLevel::Summary.enabled());
        assert!(!TelemetryLevel::Summary.traces());
        assert!(TelemetryLevel::Full.traces());
    }
}
