//! BCN system parameters: the paper's notation, validated.

use crate::error::BcnError;
use crate::units::{GBPS, MBIT, MBPS};

/// Complete parameterisation of a BCN congestion-control system on a
/// single bottleneck (paper Sections II-B and III).
///
/// | Field      | Paper symbol | Meaning |
/// |------------|--------------|---------|
/// | `n_flows`  | `N`          | number of homogeneous active flows |
/// | `capacity` | `C`          | bottleneck capacity (bit/s) |
/// | `q0`       | `q0`         | queue reference point (bits) |
/// | `buffer`   | `B`          | physical buffer size (bits) |
/// | `gi`       | `Gi`         | additive-increase gain |
/// | `gd`       | `Gd`         | multiplicative-decrease gain |
/// | `ru`       | `Ru`         | rate increase unit (bit/s) |
/// | `w`        | `w`          | weight of the queue-variation term in sigma |
/// | `pm`       | `pm`         | packet sampling probability |
/// | `qsc`      | `q_sc`       | severe-congestion (PAUSE) threshold (bits) |
///
/// Use [`BcnParams::paper_defaults`] for the worked example of Section
/// IV-C, or the builder-style `with_*` methods to vary fields.
///
/// # Example
///
/// ```
/// use bcn::BcnParams;
/// use bcn::units::{GBPS, MBIT};
///
/// let p = BcnParams::paper_defaults()
///     .with_n_flows(100)
///     .with_buffer(20.0 * MBIT);
/// assert_eq!(p.n_flows, 100);
/// assert_eq!(p.capacity, 10.0 * GBPS);
/// p.validate().unwrap();
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BcnParams {
    /// Number of homogeneous active flows `N`.
    pub n_flows: u32,
    /// Bottleneck link capacity `C` in bit/s.
    pub capacity: f64,
    /// Queue reference point `q0` in bits.
    pub q0: f64,
    /// Physical buffer size `B` in bits.
    pub buffer: f64,
    /// Additive-increase gain `Gi`.
    pub gi: f64,
    /// Multiplicative-decrease gain `Gd`.
    pub gd: f64,
    /// Rate increase unit `Ru` in bit/s.
    pub ru: f64,
    /// Weight `w` of the queue-variation term in the congestion measure.
    pub w: f64,
    /// Deterministic packet sampling probability `pm` (0 < pm <= 1).
    pub pm: f64,
    /// Severe-congestion threshold `q_sc` in bits at which 802.3x PAUSE is
    /// asserted (must exceed `q0`).
    pub qsc: f64,
}

impl BcnParams {
    /// The parameter values of the paper's worked example (Section IV-C
    /// remarks): `N = 50`, `C = 10 Gbit/s`, `q0 = 2.5 Mbit`, `Gi = 4`,
    /// `Gd = 1/128`, `Ru = 8 Mbit/s`, and the standard-draft style
    /// `w = 2`, `pm = 0.01`. The buffer defaults to the bandwidth-delay
    /// product of the example (5 Mbit) and `q_sc` to 90% of the buffer.
    #[must_use]
    pub fn paper_defaults() -> Self {
        let buffer = 5.0 * MBIT;
        Self {
            n_flows: 50,
            capacity: 10.0 * GBPS,
            q0: 2.5 * MBIT,
            buffer,
            gi: 4.0,
            gd: 1.0 / 128.0,
            ru: 8.0 * MBPS,
            w: 2.0,
            pm: 0.01,
            qsc: 0.9 * buffer,
        }
    }

    /// A smaller, numerically fast parameter set used throughout the test
    /// suite: same structure (Case 1 by default) but with time constants
    /// ~100x shorter than the worked example so trajectories converge in
    /// few model-seconds.
    #[must_use]
    pub fn test_defaults() -> Self {
        let buffer = 8.0e4;
        Self {
            n_flows: 10,
            capacity: 1.0e6,
            q0: 2.0e4,
            buffer,
            gi: 1.0,
            gd: 1.0 / 64.0,
            ru: 1.0e4,
            w: 2.0,
            pm: 0.05,
            qsc: 0.9 * buffer,
        }
    }

    /// Returns a copy with `n_flows` replaced.
    #[must_use]
    pub fn with_n_flows(mut self, n: u32) -> Self {
        self.n_flows = n;
        self
    }

    /// Returns a copy with the capacity `C` (bit/s) replaced.
    #[must_use]
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns a copy with the queue reference `q0` (bits) replaced.
    #[must_use]
    pub fn with_q0(mut self, q0: f64) -> Self {
        self.q0 = q0;
        self
    }

    /// Returns a copy with the buffer size `B` (bits) replaced (also
    /// keeps `q_sc` at 90% of the new buffer if it would otherwise exceed
    /// the buffer).
    #[must_use]
    pub fn with_buffer(mut self, buffer: f64) -> Self {
        self.buffer = buffer;
        if self.qsc > buffer {
            self.qsc = 0.9 * buffer;
        }
        self
    }

    /// Returns a copy with the severe-congestion threshold `q_sc` (bits)
    /// replaced.
    #[must_use]
    pub fn with_qsc(mut self, qsc: f64) -> Self {
        self.qsc = qsc;
        self
    }

    /// Returns a copy with the additive-increase gain `Gi` replaced.
    #[must_use]
    pub fn with_gi(mut self, gi: f64) -> Self {
        self.gi = gi;
        self
    }

    /// Returns a copy with the multiplicative-decrease gain `Gd` replaced.
    #[must_use]
    pub fn with_gd(mut self, gd: f64) -> Self {
        self.gd = gd;
        self
    }

    /// Returns a copy with the rate increase unit `Ru` (bit/s) replaced.
    #[must_use]
    pub fn with_ru(mut self, ru: f64) -> Self {
        self.ru = ru;
        self
    }

    /// Returns a copy with the sigma weight `w` replaced.
    #[must_use]
    pub fn with_w(mut self, w: f64) -> Self {
        self.w = w;
        self
    }

    /// Returns a copy with the sampling probability `pm` replaced.
    #[must_use]
    pub fn with_pm(mut self, pm: f64) -> Self {
        self.pm = pm;
        self
    }

    /// Validates all constraints the analysis relies on.
    ///
    /// # Errors
    ///
    /// Returns [`BcnError::InvalidParameter`] naming the first violated
    /// constraint: all gains/capacities/thresholds must be positive and
    /// finite, `pm` in `(0, 1]`, and `0 < q0 < q_sc <= B`.
    pub fn validate(&self) -> Result<(), BcnError> {
        fn pos(name: &'static str, v: f64) -> Result<(), BcnError> {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(BcnError::InvalidParameter {
                    name,
                    reason: format!("must be positive and finite, got {v}"),
                })
            }
        }
        if self.n_flows == 0 {
            return Err(BcnError::InvalidParameter {
                name: "n_flows",
                reason: "must be at least 1".into(),
            });
        }
        pos("capacity", self.capacity)?;
        pos("q0", self.q0)?;
        pos("buffer", self.buffer)?;
        pos("gi", self.gi)?;
        pos("gd", self.gd)?;
        pos("ru", self.ru)?;
        pos("w", self.w)?;
        pos("qsc", self.qsc)?;
        if !(self.pm > 0.0 && self.pm <= 1.0) {
            return Err(BcnError::InvalidParameter {
                name: "pm",
                reason: format!("must lie in (0, 1], got {}", self.pm),
            });
        }
        if self.q0 >= self.buffer {
            return Err(BcnError::InvalidParameter {
                name: "q0",
                reason: format!(
                    "reference point ({}) must be below the buffer size ({})",
                    self.q0, self.buffer
                ),
            });
        }
        if self.qsc > self.buffer {
            return Err(BcnError::InvalidParameter {
                name: "qsc",
                reason: format!(
                    "severe-congestion threshold ({}) must not exceed the buffer ({})",
                    self.qsc, self.buffer
                ),
            });
        }
        Ok(())
    }

    /// The aggregate additive-increase coefficient `a = Ru * Gi * N`
    /// (paper Section IV-A).
    #[must_use]
    pub fn a(&self) -> f64 {
        self.ru * self.gi * f64::from(self.n_flows)
    }

    /// The multiplicative-decrease coefficient `b = Gd`.
    #[must_use]
    pub fn b(&self) -> f64 {
        self.gd
    }

    /// The switching-line slope constant `k = w / (pm * C)`: the
    /// switching line in deviation coordinates is `x + k y = 0`.
    #[must_use]
    pub fn k(&self) -> f64 {
        self.w / (self.pm * self.capacity)
    }

    /// The congestion measure `sigma = (q0 - q) - w dq` expressed in
    /// deviation coordinates: `sigma = -(x + k y)` (paper Eq. 6).
    #[must_use]
    pub fn sigma(&self, x: f64, y: f64) -> f64 {
        -(x + self.k() * y)
    }

    /// The per-flow fair share `C / N` in bit/s.
    #[must_use]
    pub fn fair_share(&self) -> f64 {
        self.capacity / f64::from(self.n_flows)
    }

    /// Converts a deviation-coordinates point `(x, y)` back to physical
    /// `(queue bits, aggregate rate bit/s)`.
    #[must_use]
    pub fn to_physical(&self, p: [f64; 2]) -> [f64; 2] {
        [p[0] + self.q0, p[1] + self.capacity]
    }

    /// Converts a physical `(queue bits, aggregate rate bit/s)` point to
    /// deviation coordinates `(x, y)`.
    #[must_use]
    pub fn to_deviation(&self, p: [f64; 2]) -> [f64; 2] {
        [p[0] - self.q0, p[1] - self.capacity]
    }

    /// The canonical initial point of the phase-plane analysis,
    /// `(x, y) = (-q0, 0)`: queue empty, aggregate rate equal to capacity
    /// (reached at the end of the warm-up stage; paper Section IV-C).
    #[must_use]
    pub fn initial_point(&self) -> [f64; 2] {
        [-self.q0, 0.0]
    }
}

impl Default for BcnParams {
    /// Same as [`BcnParams::paper_defaults`].
    fn default() -> Self {
        Self::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_validate_and_derive() {
        let p = BcnParams::paper_defaults();
        p.validate().unwrap();
        assert_eq!(p.a(), 1.6e9);
        assert_eq!(p.b(), 1.0 / 128.0);
        assert!((p.k() - 2e-8).abs() < 1e-22);
        assert_eq!(p.fair_share(), 2.0e8);
    }

    #[test]
    fn test_defaults_validate() {
        BcnParams::test_defaults().validate().unwrap();
    }

    #[test]
    fn builders_replace_fields() {
        let p = BcnParams::paper_defaults()
            .with_n_flows(25)
            .with_capacity(1.0)
            .with_q0(0.1)
            .with_buffer(1.0)
            .with_gi(2.0)
            .with_gd(0.5)
            .with_ru(3.0)
            .with_w(1.0)
            .with_pm(0.5);
        assert_eq!(p.n_flows, 25);
        assert_eq!(p.capacity, 1.0);
        assert_eq!(p.q0, 0.1);
        assert_eq!(p.buffer, 1.0);
        assert_eq!((p.gi, p.gd, p.ru, p.w, p.pm), (2.0, 0.5, 3.0, 1.0, 0.5));
        // qsc was pulled down to fit the new buffer.
        assert!(p.qsc <= p.buffer);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let base = BcnParams::paper_defaults();
        assert!(base.clone().with_n_flows(0).validate().is_err());
        assert!(base.clone().with_capacity(-1.0).validate().is_err());
        assert!(base.clone().with_pm(0.0).validate().is_err());
        assert!(base.clone().with_pm(1.5).validate().is_err());
        assert!(base.clone().with_gi(f64::NAN).validate().is_err());
        // q0 >= buffer is rejected.
        assert!(base.clone().with_q0(10.0e6).validate().is_err());
    }

    #[test]
    fn sigma_sign_matches_regions() {
        let p = BcnParams::paper_defaults();
        // Queue below reference, rate at capacity: increase (sigma > 0).
        assert!(p.sigma(-1.0e6, 0.0) > 0.0);
        // Queue above reference: decrease.
        assert!(p.sigma(1.0e6, 0.0) < 0.0);
        // On the switching line: zero.
        let k = p.k();
        assert_eq!(p.sigma(-k * 5.0, 5.0), 0.0);
    }

    #[test]
    fn coordinate_transforms_roundtrip() {
        let p = BcnParams::paper_defaults();
        let dev = [-p.q0, 1.0e8];
        let phys = p.to_physical(dev);
        assert_eq!(phys[0], 0.0);
        assert_eq!(phys[1], p.capacity + 1.0e8);
        assert_eq!(p.to_deviation(phys), dev);
    }

    #[test]
    fn initial_point_is_empty_queue_at_capacity() {
        let p = BcnParams::paper_defaults();
        let phys = p.to_physical(p.initial_point());
        assert_eq!(phys[0], 0.0);
        assert_eq!(phys[1], p.capacity);
    }
}
