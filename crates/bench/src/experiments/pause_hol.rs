//! PAUSE head-of-line blocking vs end-to-end BCN (the paper's
//! Introduction motivation).
//!
//! Topology: culprit flows congest a quarter-capacity leaf port behind a
//! shared trunk; an innocent victim flow shares only the trunk. Three
//! policies on identical traffic:
//!
//! * **drop-tail** — culprit frames drop at the leaf port; the victim is
//!   untouched (lossy Ethernet, unacceptable for storage traffic);
//! * **PAUSE only** — lossless, but the backlog trips per-link PAUSE,
//!   the trunk stalls, and the victim's throughput collapses — the
//!   congestion-spreading problem the paper quotes;
//! * **BCN (+ PAUSE backstop)** — reaction points throttle the culprits
//!   at the edge; no sustained backlog, no trunk PAUSE, victim unharmed,
//!   and still lossless.
//!
//! Two PFC (802.1Qbb per-priority PAUSE) rows complete the DCE picture:
//! with the victim on its own priority class PFC isolates it without any
//! end-to-end loop; with the victim *inside* the congested class PFC
//! degenerates to plain PAUSE — the within-class gap BCN exists to fill.

use std::path::Path;

use dcesim::cp::CpConfig;
use dcesim::frame::CpId;
use dcesim::net::{victim_topology, NetSim, PauseConfig};
use dcesim::rp::RpConfig;
use dcesim::time::Duration;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

const TRUNK: f64 = 1.0e9;
const FRAME: f64 = 8_000.0;
const T_END: f64 = 0.25;
const N_CULPRITS: usize = 4;

fn bcn_pair() -> (CpConfig, RpConfig) {
    let q0 = 10.0 * FRAME;
    let cp = CpConfig {
        cpid: CpId(2),
        q0_bits: q0,
        qsc_bits: 50.0 * FRAME,
        w: 200.0 / FRAME,
        sample_every: 5,
        fb_quant: None,
        gate_positive: false,
    };
    let rp = RpConfig {
        gi: 0.5,
        gd: 1.0 / 512.0,
        ru: 1.0e4,
        gain_scale: FRAME * 4.0 / (0.2 * TRUNK),
        r_min: TRUNK * 1e-6,
        r_max: TRUNK,
    };
    (cp, rp)
}

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("PAUSE head-of-line blocking vs BCN (victim-flow scenario)");
    println!(
        "topology: {N_CULPRITS} culprits -> S1 -> trunk -> S2 -> 0.25C bottleneck; victim shares the trunk only"
    );

    // (name, pause config, BCN pair, victim priority class)
    type Scenario = (&'static str, PauseConfig, Option<(CpConfig, RpConfig)>, u8);
    let hold = Duration::from_secs(40.0 * FRAME / TRUNK);
    let scenarios: Vec<Scenario> = vec![
        (
            "drop-tail",
            PauseConfig { enabled: false, hold: Duration::ZERO, per_priority: false },
            None,
            0,
        ),
        ("PAUSE only", PauseConfig { enabled: true, hold, per_priority: false }, None, 0),
        (
            "PFC, victim on its own class",
            PauseConfig { enabled: true, hold, per_priority: true },
            None,
            1,
        ),
        (
            "PFC, victim inside the class",
            PauseConfig { enabled: true, hold, per_priority: true },
            None,
            0,
        ),
        (
            "BCN + PAUSE backstop",
            PauseConfig { enabled: true, hold, per_priority: false },
            Some(bcn_pair()),
            0,
        ),
    ];

    let mut table = Table::new(&[
        "policy",
        "victim throughput (vs 0.25C demand)",
        "culprit drops",
        "victim drops",
        "trunk PAUSEs",
        "lossless",
    ]);
    let mut plot =
        SvgPlot::new("S2 backlog under the three policies", "t (s)", "S2 total backlog (bits)");
    let mut csv = Csv::new(&["scenario", "victim_throughput", "culprit_drops", "trunk_pauses"]);

    for (i, (name, pause, bcn, victim_class)) in scenarios.into_iter().enumerate() {
        let (mut cfg, victim) =
            victim_topology(N_CULPRITS, TRUNK, FRAME, Duration::from_secs(1e-6), T_END, pause, bcn);
        cfg.flows[victim].priority = victim_class;
        let trunk_link = N_CULPRITS + 1;
        let report = NetSim::new(cfg).run();
        let vt = report.throughput(victim, T_END);
        let culprit_drops: u64 = report.flows[..victim].iter().map(|f| f.dropped_frames).sum();
        let victim_drops = report.flows[victim].dropped_frames;
        let trunk_pauses = report.pause_counts[trunk_link];
        table.row(&[
            name.to_string(),
            format!("{:.1}% ({:.3e} bit/s)", vt / (0.25 * TRUNK) * 100.0, vt),
            culprit_drops.to_string(),
            victim_drops.to_string(),
            trunk_pauses.to_string(),
            (culprit_drops + victim_drops == 0).to_string(),
        ]);
        csv.row(&[i as f64, vt, culprit_drops as f64, trunk_pauses as f64]);
        plot = plot.with_series(Series::line(
            name,
            report.switch_queues[1].times(),
            report.switch_queues[1].values(),
            COLOR_CYCLE[i],
        ));
    }
    print!("{table}");
    println!(
        "the PAUSE row is the paper's Introduction: lossless but the innocent\n\
         victim starves. PFC fixes the cross-class case only; BCN restores the\n\
         victim inside the congested class while staying lossless."
    );

    csv.save(out.join("exp_pause_hol.csv"))?;
    println!("wrote {}", out.join("exp_pause_hol.csv").display());
    save_plot(&plot, out, "exp_pause_hol.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("pause_hol_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_pause_hol.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
