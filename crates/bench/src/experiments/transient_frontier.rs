//! Transient-performance frontier — the paper's Section V future work,
//! executed: the overshoot/settling trade surface over the tuning knobs,
//! and the inverse design questions an operator actually asks.

use std::path::Path;

use bcn::transient::{analyze, max_gi_for_overshoot, w_frontier};
use bcn::BcnParams;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Transient-performance frontier (the paper's future work)");
    let params = BcnParams::test_defaults();

    // Baseline metrics.
    let m = analyze(&params);
    println!(
        "defaults: case = {}, overshoot = {:.1}% of q0, undershoot = {:.1}%, round = {:.4} s, rho = {:.4}, settle = {:.2} s",
        m.case,
        m.overshoot_ratio * 100.0,
        m.undershoot_ratio * 100.0,
        m.round_period.unwrap_or(f64::NAN),
        m.rho.unwrap_or(f64::NAN),
        m.settling_time.unwrap_or(f64::NAN),
    );

    // The w frontier: overshoot barely moves, settling moves 30x.
    let ws: Vec<f64> = (0..=14).map(|i| 0.25 * 1.5_f64.powi(i)).collect();
    let frontier = w_frontier(&params, &ws);
    let mut csv = Csv::new(&["w", "overshoot_ratio", "settling_time"]);
    let mut over = Vec::new();
    let mut settle = Vec::new();
    for (w, o, s) in &frontier {
        csv.row(&[*w, *o, s.unwrap_or(f64::NAN)]);
        if let Some(s) = s {
            over.push(*o);
            settle.push(*s);
        }
    }
    csv.save(out.join("exp_transient_frontier.csv"))?;
    println!("wrote {}", out.join("exp_transient_frontier.csv").display());

    let plot = SvgPlot::new(
        "Overshoot vs settling time as w sweeps (Case 1)",
        "settling time (s)",
        "overshoot / q0",
    )
    .with_series(Series::scatter("w sweep", &settle, &over, COLOR_CYCLE[0]));
    save_plot(&plot, out, "exp_transient_frontier.svg")?;

    // Inverse design: maximum Gi for a set of overshoot budgets. Each
    // budget runs its own bisection — independent, so fan them out.
    let budgets = [0.5, 1.0, 2.0, 4.0];
    let designs = parkit::par_map(&budgets, |&budget| {
        max_gi_for_overshoot(&params, budget, 1e-3, 100.0)
            .map(|gi| (gi, analyze(&params.clone().with_gi(gi)).settling_time))
    });
    let mut table = Table::new(&["overshoot budget (x q0)", "max Gi", "settling at that Gi (s)"]);
    for (budget, design) in budgets.iter().zip(&designs) {
        match design {
            Some((gi, settle)) => table.row(&[
                format!("{budget}"),
                format!("{gi:.4}"),
                format!("{:.3}", settle.unwrap_or(f64::NAN)),
            ]),
            None => table.row(&[format!("{budget}"), "unreachable".into(), "-".into()]),
        }
    }
    print!("{table}");
    println!("larger overshoot budgets buy faster ramping (larger Gi) — the dual of Theorem 1's buffer cost.");
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("frontier_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_transient_frontier.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
