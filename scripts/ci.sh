#!/usr/bin/env bash
# The offline CI gauntlet: formatting, lints, release build, full test
# suite. Mirrors .github/workflows/ci.yml so it can run anywhere
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test (serial: DCE_BCN_THREADS=1) =="
DCE_BCN_THREADS=1 cargo test --workspace -q

echo "== cargo test (parallel: DCE_BCN_THREADS=4) =="
DCE_BCN_THREADS=4 cargo test --workspace -q

echo "== sweep scaling smoke (equivalence check) =="
DCE_BCN_SWEEP_GRID=8 DCE_BCN_SWEEP_REPS=1 \
  cargo run --release -p bench --bin sweep_scaling

echo "CI OK"
