#!/usr/bin/env bash
# The offline CI gauntlet: formatting, lints, release build, full test
# suite. Mirrors .github/workflows/ci.yml so it can run anywhere
# without network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo test =="
cargo test --workspace -q

echo "CI OK"
