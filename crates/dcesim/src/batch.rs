//! Batched multi-seed simulation runs.
//!
//! The simulator itself is fully deterministic — same [`SimConfig`],
//! same trajectory. Sensitivity studies instead perturb the *workload*:
//! each seed deterministically jitters every flow's start time and
//! initial rate (a splitmix64 hash of `(seed, flow, field)`), so a batch
//! explores a reproducible neighbourhood of the base scenario. Seeds run
//! in parallel across the configured worker count (see the `parkit`
//! crate); each run carries its own [`Telemetry`] shard and the shards
//! are merged in seed order afterwards, so the aggregate telemetry is
//! identical at any thread count.
//!
//! Seeds are *panic-isolated*: a seed whose run panics (or whose jittered
//! configuration fails validation) is captured as
//! [`SeedOutcome::Failed`] and quarantined while every other seed
//! completes normally. A panicking seed additionally surrenders its
//! flight recorder — the telemetry shard it had accumulated up to the
//! panic, including the open-span stack — so the crash can be debriefed
//! (see `dcebcn batch`'s `results/postmortem-<seed>.jsonl`).
//!
//! Three supervision layers harden long campaigns:
//!
//! * **Watchdog** — a per-seed event budget (deterministic) and an
//!   optional wall-clock deadline demote runaway seeds to
//!   [`SeedOutcome::TimedOut`], flight recorder attached, instead of
//!   hanging the batch.
//! * **Retry** — failing seeds can be re-attempted with exponential
//!   backoff ([`BatchConfig::max_seed_retries`]); the retry count rides
//!   on [`SeedOutcome::Failed`] so it survives checkpoints.
//! * **Checkpoint/resume** — [`run_batch_checkpointed`] persists every
//!   finished seed through [`crate::checkpoint::BatchCheckpoint`] and
//!   restores acknowledged seeds bit-exactly on resume, so the merged
//!   report after a crash equals an uninterrupted run byte for byte.

use telemetry::{SpanKind, Telemetry, TelemetryLevel};

use crate::checkpoint::{BatchCheckpoint, CheckpointError, NetBatchCheckpoint, ReplaySpec};
use crate::faults::splitmix64;
use crate::hybrid::{HybridSim, HybridSpec};
use crate::net::{NetConfig, NetReport, NetSim};
use crate::sim::{SimConfig, SimReport, SimWorkspace, Simulation};
use crate::time::Time;

/// A multi-seed batch around a base scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// The unperturbed scenario.
    pub base: SimConfig,
    /// One simulation per seed. Seed values are free-form; equal seeds
    /// produce equal runs.
    pub seeds: Vec<u64>,
    /// Telemetry level for every run (`Off` skips the sinks entirely).
    pub level: TelemetryLevel,
    /// Maximum start-time jitter in seconds: each flow's start moves
    /// forward by `u * start_jitter_secs` with `u` uniform in `[0, 1)`.
    pub start_jitter_secs: f64,
    /// Relative initial-rate jitter: each flow's rate is scaled by
    /// `1 + (2u - 1) * rate_jitter_frac`.
    pub rate_jitter_frac: f64,
    /// Seeds that deliberately panic partway through their run (test
    /// hook for the quarantine and flight-recorder machinery; see
    /// `dcebcn batch --faults panic-seed=N`).
    pub panic_seeds: Vec<u64>,
    /// Watchdog event budget: a seed still stepping after this many
    /// dispatched events is demoted to [`SeedOutcome::TimedOut`].
    /// Counted in sim events, so the verdict is deterministic and
    /// identical at any thread count. `None` disables the budget.
    pub max_events_per_seed: Option<u64>,
    /// Watchdog wall-clock deadline per seed, in milliseconds, checked
    /// every few thousand events. Unlike the event budget this depends
    /// on host speed — use it as a backstop against pathological seeds,
    /// not in runs whose artifacts must be machine-independent. `None`
    /// disables the deadline.
    pub max_seed_wall_ms: Option<u64>,
    /// How many times a failing seed is re-attempted before its
    /// [`SeedOutcome::Failed`] is accepted. Timeouts are not retried
    /// (an event-budget verdict is deterministic).
    pub max_seed_retries: u32,
    /// Base backoff before the first retry, in milliseconds; doubles on
    /// each subsequent attempt. Zero sleeps not at all.
    pub retry_backoff_ms: u64,
    /// Run every seed through the hybrid fluid–packet co-simulator
    /// instead of the pure packet engine (see [`crate::hybrid`]).
    /// `None` keeps the batch byte-identical to the pre-hybrid runner.
    pub hybrid: Option<HybridSpec>,
}

impl BatchConfig {
    /// A batch over `n_seeds` consecutive seeds with mild jitter (5% of
    /// the simulated horizon in start time, 10% in initial rate).
    #[must_use]
    pub fn quick(base: SimConfig, n_seeds: u64) -> Self {
        let horizon = base.t_end.as_secs();
        Self {
            base,
            seeds: (0..n_seeds).collect(),
            level: TelemetryLevel::Off,
            start_jitter_secs: 0.05 * horizon,
            rate_jitter_frac: 0.1,
            panic_seeds: Vec::new(),
            max_events_per_seed: None,
            max_seed_wall_ms: None,
            max_seed_retries: 0,
            retry_backoff_ms: 0,
            hybrid: None,
        }
    }
}

/// What happened to one seed of a batch.
///
/// The completed report is boxed: a `SimReport` carries full time
/// series, so parking it on the heap keeps the outcome vector compact
/// next to the small `Failed` variant.
#[derive(Debug)]
pub enum SeedOutcome {
    /// The run finished; its report is attached.
    Completed(Box<SimReport>),
    /// The run panicked or its configuration was invalid; the seed is
    /// quarantined and the rest of the batch is unaffected.
    Failed {
        /// Human-readable failure cause (panic message or config
        /// error), sanitised to survive the flat JSONL codec (no `"`
        /// or control characters).
        cause: String,
        /// How many retry attempts were burned before this failure was
        /// accepted (0 when retries are disabled).
        retries: u32,
        /// The flight recorder salvaged from the panicked run: the
        /// telemetry shard as it stood at the moment of the panic —
        /// trace ring, open-span stack, metrics. `None` when collection
        /// was off or the configuration never validated.
        telemetry: Option<Box<Telemetry>>,
    },
    /// The watchdog demoted the run: it exhausted its event budget (or
    /// wall-clock deadline) and was stopped mid-flight.
    TimedOut {
        /// Events dispatched before the watchdog fired.
        events: u64,
        /// The flight recorder as it stood at demotion (`None` when
        /// collection was off).
        telemetry: Option<Box<Telemetry>>,
    },
}

/// Supervision tallies for one batch run: how many seeds were restored
/// from a checkpoint, how many retry attempts were burned on failing
/// seeds, and how many seeds the watchdog demoted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Seeds restored bit-exactly from the checkpoint (skipped).
    pub resumed: u64,
    /// Retry attempts recorded on [`SeedOutcome::Failed`] outcomes.
    /// Deterministic and checkpointed, so it survives resume.
    pub retried: u64,
    /// Seeds demoted to [`SeedOutcome::TimedOut`] by the watchdog.
    pub timed_out: u64,
}

/// The result of one batch: per-seed outcomes in seed order plus the
/// merged telemetry aggregate.
#[derive(Debug)]
pub struct BatchReport {
    /// The seeds, in the order the outcomes are stored.
    pub seeds: Vec<u64>,
    /// One outcome per seed, input order preserved.
    pub outcomes: Vec<SeedOutcome>,
    /// Telemetry shards of the *completed* seeds merged in seed order
    /// (counters added, histograms combined bucket-wise, traces
    /// interleaved by sim time); `None` when the level disables
    /// collection. Carries the resume-stable supervision counters
    /// `batch.retried` / `batch.timed_out` (but *not* `batch.resumed`,
    /// which would make a resumed artifact differ from a clean one).
    pub telemetry: Option<Telemetry>,
    /// Supervision tallies (resume/retry/watchdog) for this run.
    pub supervisor: SupervisorStats,
}

impl BatchReport {
    /// The seeds that finished, with their reports, in seed order.
    pub fn completed(&self) -> impl Iterator<Item = (u64, &SimReport)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            SeedOutcome::Completed(report) => Some((seed, report.as_ref())),
            _ => None,
        })
    }

    /// The quarantined seeds with their failure causes, in seed order
    /// (watchdog timeouts are listed separately by
    /// [`timed_out`](BatchReport::timed_out)).
    pub fn failures(&self) -> impl Iterator<Item = (u64, &str)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            SeedOutcome::Failed { cause, .. } => Some((seed, cause.as_str())),
            _ => None,
        })
    }

    /// The watchdog-demoted seeds with their event counts, in seed
    /// order.
    pub fn timed_out(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            SeedOutcome::TimedOut { events, .. } => Some((seed, *events)),
            _ => None,
        })
    }

    /// Every quarantined seed (failed *or* timed out) with a
    /// replay-comparable cause string and the salvaged flight-recorder
    /// telemetry (when any was captured), in seed order.
    pub fn postmortems(&self) -> impl Iterator<Item = (u64, String, Option<&Telemetry>)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            SeedOutcome::Completed(_) => None,
            SeedOutcome::Failed { cause, telemetry, .. } => {
                Some((seed, cause.clone(), telemetry.as_deref()))
            }
            SeedOutcome::TimedOut { events, telemetry } => {
                Some((seed, timeout_cause(*events), telemetry.as_deref()))
            }
        })
    }
}

/// How many events a `panic_seeds` run dispatches before it blows up —
/// enough that the flight recorder has a trace worth dumping. Public so
/// the CLI can embed the same trigger in postmortem replay contexts.
pub const PANIC_AFTER_STEPS: u64 = 256;

/// Steps between wall-clock deadline checks: `Instant::now()` is too
/// expensive for every event, and a few thousand events of slack on a
/// best-effort deadline is immaterial.
const WALL_CHECK_EVERY: u64 = 4096;

/// The replay-comparable cause string for a watchdog demotion; shared
/// by postmortem dumps and [`replay`] so the comparison is verbatim.
#[must_use]
pub fn timeout_cause(events: u64) -> String {
    format!("watchdog: event budget exhausted after {events} events")
}

/// Strips characters the flat JSONL codec cannot carry (`"` becomes
/// `'`, control characters become spaces). Applied to every failure
/// cause at the point of capture, so the in-memory outcome, the
/// checkpoint shard, and the postmortem dump all agree byte for byte.
fn sanitize_cause(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            '"' => '\'',
            c if c.is_control() => ' ',
            c => c,
        })
        .collect()
}

/// A deterministic uniform sample in `[0, 1)` keyed by `(seed, flow,
/// field)`.
fn unit(seed: u64, flow: u64, field: u64) -> f64 {
    let h = splitmix64(seed ^ splitmix64(flow ^ splitmix64(field)));
    // 53 high bits -> the full f64 mantissa range.
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// The base scenario perturbed for one seed: every flow's start time and
/// initial rate jittered deterministically. Seed-stable: the same
/// `(cfg, seed)` pair always yields the same configuration.
#[must_use]
pub fn seeded_config(cfg: &BatchConfig, seed: u64) -> SimConfig {
    let mut out = cfg.base.clone();
    for (i, flow) in out.flows.iter_mut().enumerate() {
        let i = i as u64;
        let ds = unit(seed, i, 0) * cfg.start_jitter_secs;
        let dr = 1.0 + (2.0 * unit(seed, i, 1) - 1.0) * cfg.rate_jitter_frac;
        flow.start = Time::from_secs(flow.start.as_secs() + ds);
        flow.initial_rate *= dr;
    }
    // With fault injection on, each seed gets its own decision streams;
    // a fault-free base is left untouched so the run stays byte-identical
    // to the pre-fault-layer batch.
    if out.faults.enabled() {
        out.faults.seed = splitmix64(seed ^ out.faults.seed);
    }
    out
}

/// How one supervised step loop ended (when it did not panic).
enum StepEnd {
    /// The run drained its event queue normally.
    Done,
    /// The watchdog fired after this many events.
    Budget(u64),
}

/// The engine a supervised seed runs on: the pure packet simulator or
/// the hybrid co-simulator (boxed — it carries the packet engine plus
/// the propagator and controller state).
#[allow(clippy::large_enum_variant)] // one short-lived engine per seed; no point boxing the common case
enum SeedEngine {
    Packet(Simulation),
    Hybrid(Box<HybridSim>),
}

impl SeedEngine {
    fn step(&mut self) -> bool {
        match self {
            SeedEngine::Packet(sim) => sim.step(),
            SeedEngine::Hybrid(h) => h.step(),
        }
    }

    fn with_telemetry_sink(self, tel: Telemetry) -> Self {
        match self {
            SeedEngine::Packet(sim) => SeedEngine::Packet(sim.with_telemetry_sink(tel)),
            SeedEngine::Hybrid(h) => SeedEngine::Hybrid(Box::new(h.with_telemetry_sink(tel))),
        }
    }

    fn take_telemetry(&mut self) -> Option<Telemetry> {
        match self {
            SeedEngine::Packet(sim) => sim.take_telemetry(),
            SeedEngine::Hybrid(h) => h.take_telemetry(),
        }
    }

    /// Finalizes into the packet report (the hybrid epoch accounting
    /// reaches the batch aggregate through the `hybrid.*` telemetry
    /// counters the engine flushes on finish).
    fn finish_into(self, ws: &mut SimWorkspace) -> SimReport {
        match self {
            SeedEngine::Packet(sim) => sim.finish_into(ws),
            SeedEngine::Hybrid(h) => h.finish_into(ws).sim,
        }
    }
}

/// Runs one already-validated seeded configuration under full
/// supervision: telemetry sink with per-seed span-id base, intentional
/// panic hook, event budget, and wall-clock deadline. `local` must be
/// a workspace the caller owns; on non-completion it is left torn and
/// must be discarded.
#[allow(clippy::too_many_arguments)]
fn run_seeded(
    sim_cfg: SimConfig,
    seed: u64,
    level: TelemetryLevel,
    hybrid: Option<&HybridSpec>,
    panic_after: Option<u64>,
    max_events: Option<u64>,
    max_wall_ms: Option<u64>,
    local: &mut SimWorkspace,
) -> SeedOutcome {
    let t_end = sim_cfg.t_end.as_secs();
    let mut sim = match hybrid {
        // The caller pre-validated the spec, so construction cannot
        // panic on it (and `sim_cfg` itself was validated above).
        Some(spec) => SeedEngine::Hybrid(Box::new(HybridSim::new_in(
            spec.params.clone(),
            sim_cfg,
            spec.guards,
            local,
        ))),
        None => SeedEngine::Packet(Simulation::new_in(sim_cfg, local)),
    };
    let mut seed_span = 0;
    if level.enabled() {
        let mut tel = Telemetry::new(level);
        // Disjoint per-seed id ranges keep span ids unique after the
        // shards merge.
        tel.set_span_id_base((seed + 1) << 32);
        seed_span = tel.span_begin(0.0, SpanKind::BatchSeed, seed as u32, 0);
        sim = sim.with_telemetry_sink(tel);
    }
    let deadline =
        max_wall_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    // Only the step loop is unwind-wrapped: construction was validated
    // by the caller, and the engine stays owned out here so a panicking
    // run can still surrender its flight recorder. The closure mutates
    // nothing but the engine, which is inspected (not re-run) after a
    // panic, so the unwind-safety assertion is sound.
    let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut steps: u64 = 0;
        while sim.step() {
            steps += 1;
            if panic_after.is_some_and(|n| steps >= n) {
                panic!("seed {seed}: intentional panic (panic_seeds)");
            }
            if max_events.is_some_and(|n| steps >= n) {
                return StepEnd::Budget(steps);
            }
            if steps.is_multiple_of(WALL_CHECK_EVERY)
                && deadline.is_some_and(|d| std::time::Instant::now() >= d)
            {
                return StepEnd::Budget(steps);
            }
        }
        // A run shorter than the trigger still has to fail.
        if panic_after.is_some() {
            panic!("seed {seed}: intentional panic (panic_seeds)");
        }
        StepEnd::Done
    }));
    match stepped {
        Ok(StepEnd::Done) => {
            let mut report = sim.finish_into(local);
            if let Some(tel) = report.telemetry.as_mut() {
                tel.span_end(t_end, seed_span);
            }
            SeedOutcome::Completed(Box::new(report))
        }
        Ok(StepEnd::Budget(events)) => {
            SeedOutcome::TimedOut { events, telemetry: sim.take_telemetry().map(Box::new) }
        }
        Err(payload) => SeedOutcome::Failed {
            cause: sanitize_cause(&panic_message(payload.as_ref())),
            retries: 0,
            telemetry: sim.take_telemetry().map(Box::new),
        },
    }
}

/// One seed under the batch's retry policy. The workspace is taken out
/// for the duration of each attempt so a panicking seed cannot leave
/// half-torn buffers behind; it is restored only after a completed run.
fn run_seed_with_retry(cfg: &BatchConfig, seed: u64, ws: &mut SimWorkspace) -> SeedOutcome {
    let mut attempt: u32 = 0;
    loop {
        let mut local = std::mem::take(ws);
        let sim_cfg = seeded_config(cfg, seed);
        if let Err(e) = sim_cfg
            .validate()
            .and_then(|()| cfg.hybrid.iter().try_for_each(|spec| spec.validate_for(&sim_cfg)))
        {
            *ws = local;
            return SeedOutcome::Failed {
                cause: sanitize_cause(&e.to_string()),
                retries: attempt,
                telemetry: None,
            };
        }
        // Known-hazardous seeds get a full flight recorder regardless of
        // the batch level: they always fail, so their shards never reach
        // the merge and the upgrade cannot perturb aggregate telemetry.
        let panic_after = cfg.panic_seeds.contains(&seed).then_some(PANIC_AFTER_STEPS);
        let level = if panic_after.is_some() { TelemetryLevel::Full } else { cfg.level };
        let outcome = run_seeded(
            sim_cfg,
            seed,
            level,
            cfg.hybrid.as_ref(),
            panic_after,
            cfg.max_events_per_seed,
            cfg.max_seed_wall_ms,
            &mut local,
        );
        match outcome {
            SeedOutcome::Completed(_) => {
                *ws = local;
                return outcome;
            }
            // An event-budget verdict is deterministic — retrying would
            // reproduce it exactly, so don't burn the attempts.
            SeedOutcome::TimedOut { .. } => return outcome,
            SeedOutcome::Failed { cause, telemetry, .. } => {
                if attempt >= cfg.max_seed_retries {
                    return SeedOutcome::Failed { cause, retries: attempt, telemetry };
                }
                attempt += 1;
                if cfg.retry_backoff_ms > 0 {
                    let factor = 1u64 << (attempt - 1).min(16);
                    std::thread::sleep(std::time::Duration::from_millis(
                        cfg.retry_backoff_ms.saturating_mul(factor),
                    ));
                }
            }
        }
    }
}

/// Runs every seed of the batch, in parallel across the configured
/// worker count, and merges the telemetry shards in seed order.
///
/// Determinism: each seed's trajectory depends only on its
/// [`seeded_config`], and results land at their seed's index, so the
/// batch output — including the merged telemetry — is identical at any
/// thread count (`DCE_BCN_THREADS=1` included).
#[must_use]
pub fn run_batch(cfg: &BatchConfig) -> BatchReport {
    run_batch_inner(cfg, None).expect("in-memory batch performs no checkpoint I/O")
}

/// [`run_batch`] with crash recovery: every finished seed is persisted
/// through `ckpt` before its result is counted, and seeds already
/// acknowledged by the checkpoint are restored bit-exactly instead of
/// re-run. Because restored outcomes equal fresh ones byte for byte,
/// the merged report of a resumed batch is identical to an
/// uninterrupted run at any thread count.
///
/// # Errors
///
/// Fails on the first checkpoint I/O error — the batch aborts rather
/// than silently running uncheckpointed.
pub fn run_batch_checkpointed(
    cfg: &BatchConfig,
    ckpt: &BatchCheckpoint,
) -> Result<BatchReport, CheckpointError> {
    run_batch_inner(cfg, Some(ckpt))
}

fn run_batch_inner(
    cfg: &BatchConfig,
    ckpt: Option<&BatchCheckpoint>,
) -> Result<BatchReport, CheckpointError> {
    let restored: Vec<Option<SeedOutcome>> =
        cfg.seeds.iter().map(|&s| ckpt.and_then(|c| c.take_restored(s))).collect();
    let todo: Vec<usize> =
        restored.iter().enumerate().filter_map(|(i, r)| r.is_none().then_some(i)).collect();
    let resumed = (cfg.seeds.len() - todo.len()) as u64;
    let first_io_err: std::sync::Mutex<Option<CheckpointError>> = std::sync::Mutex::new(None);
    // Each worker keeps one `SimWorkspace`, so the event-queue slab and
    // bottleneck FIFO are allocated once per worker and recycled across
    // its seeds (reuse changes no trajectory — see
    // `workspace_reuse_is_bit_identical` in `crate::sim`).
    let fresh = parkit::par_map_init(todo.len(), SimWorkspace::new, |ws, k| {
        let seed = cfg.seeds[todo[k]];
        let outcome = run_seed_with_retry(cfg, seed, ws);
        if let Some(ck) = ckpt {
            if let Err(e) = ck.record(seed, &outcome) {
                let mut slot = first_io_err.lock().expect("checkpoint error slot");
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
        outcome
    });
    if let Some(e) = first_io_err.into_inner().expect("checkpoint error slot") {
        return Err(e);
    }
    // Zip restored and fresh outcomes back into seed order (`todo` is
    // ascending and `par_map_init` lands results at their index, so the
    // fresh outcomes stream in the same order the gaps appear).
    let mut fresh = fresh.into_iter();
    let outcomes: Vec<SeedOutcome> = restored
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| fresh.next().expect("one fresh outcome per gap")))
        .collect();
    let (mut retried, mut timed_out) = (0u64, 0u64);
    for outcome in &outcomes {
        match outcome {
            SeedOutcome::Failed { retries, .. } => retried += u64::from(*retries),
            SeedOutcome::TimedOut { .. } => timed_out += 1,
            SeedOutcome::Completed(_) => {}
        }
    }
    let telemetry = cfg.level.enabled().then(|| {
        let mut agg = Telemetry::new(cfg.level);
        for outcome in &outcomes {
            if let SeedOutcome::Completed(report) = outcome {
                if let Some(shard) = &report.telemetry {
                    agg.merge(shard);
                }
            }
        }
        // Derived from checkpointed outcomes, so resume-stable; the
        // resumed count deliberately stays out (see `BatchReport`).
        agg.batch_supervision(0, retried, timed_out);
        agg
    });
    Ok(BatchReport {
        seeds: cfg.seeds.clone(),
        outcomes,
        telemetry,
        supervisor: SupervisorStats { resumed, retried, timed_out },
    })
}

/// The typed outcome of a [`replay`] divergence: the re-run did not
/// reproduce the recorded failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayMismatch {
    /// The cause recorded in the postmortem dump.
    pub expected: String,
    /// What the re-run produced instead (`None`: it completed cleanly).
    pub got: Option<String>,
}

impl std::fmt::Display for ReplayMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.got {
            Some(got) => {
                write!(f, "replay diverged: expected failure `{}`, got `{got}`", self.expected)
            }
            None => write!(
                f,
                "replay diverged: expected failure `{}`, but the run completed cleanly",
                self.expected
            ),
        }
    }
}

impl std::error::Error for ReplayMismatch {}

/// Re-runs a quarantined seed from its postmortem [`ReplaySpec`] and
/// checks that the failure reproduces verbatim. Returns the reproduced
/// cause on success.
///
/// The re-run uses the exact seeded configuration and supervision
/// triggers from the dump, with a full flight recorder; determinism
/// makes the comparison exact, so any divergence is a real behavioural
/// difference (version skew, tampered dump, or a heisenbug worth
/// escalating).
///
/// # Errors
///
/// [`ReplayMismatch`] when the re-run completes or fails differently.
pub fn replay(spec: &ReplaySpec) -> Result<String, ReplayMismatch> {
    let mismatch = |got: Option<String>| ReplayMismatch { expected: spec.cause.clone(), got };
    if let Err(e) = spec.config.validate() {
        let got = sanitize_cause(&e.to_string());
        return if got == spec.cause { Ok(got) } else { Err(mismatch(Some(got))) };
    }
    let mut ws = SimWorkspace::new();
    let outcome = run_seeded(
        spec.config.clone(),
        spec.seed,
        TelemetryLevel::Full,
        None,
        spec.panic_after,
        spec.max_events,
        None,
        &mut ws,
    );
    let got = match outcome {
        SeedOutcome::Completed(_) => None,
        SeedOutcome::Failed { cause, .. } => Some(cause),
        SeedOutcome::TimedOut { events, .. } => Some(timeout_cause(events)),
    };
    match got {
        Some(g) if g == spec.cause => Ok(g),
        got => Err(mismatch(got)),
    }
}

// ---------------------------------------------------------------------
// Multi-hop network batches
// ---------------------------------------------------------------------

/// A multi-seed batch over a multi-hop network scenario
/// ([`crate::net`]) — the scale-out counterpart of [`BatchConfig`],
/// sized for generator-built fabrics ([`crate::topo`]) with thousands
/// of hosts.
///
/// Network flows carry no start time, so only initial rates are
/// jittered; everything else — seeds fanned out across the `parkit`
/// pool, telemetry shards merged in seed order, panic quarantine,
/// watchdog demotion, checkpoint/resume — mirrors the
/// single-bottleneck runner, and the merged report is identical at any
/// thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct NetBatchConfig {
    /// The unperturbed network scenario.
    pub base: NetConfig,
    /// One run per seed; equal seeds produce equal runs.
    pub seeds: Vec<u64>,
    /// Telemetry level for every run (`Off` skips the sinks entirely).
    pub level: TelemetryLevel,
    /// Relative initial-rate jitter: each flow's rate is scaled by
    /// `1 + (2u - 1) * rate_jitter_frac` with `u` uniform in `[0, 1)`.
    pub rate_jitter_frac: f64,
    /// Seeds that deliberately panic mid-run (quarantine test hook, as
    /// in [`BatchConfig::panic_seeds`]).
    pub panic_seeds: Vec<u64>,
    /// Watchdog event budget per seed, counted in dispatched events so
    /// the verdict is deterministic. `None` disables it.
    pub max_events_per_seed: Option<u64>,
    /// Watchdog wall-clock deadline per seed in milliseconds (host
    /// dependent; backstop only). `None` disables it.
    pub max_seed_wall_ms: Option<u64>,
}

impl NetBatchConfig {
    /// A batch over `n_seeds` consecutive seeds with 10% rate jitter.
    #[must_use]
    pub fn quick(base: NetConfig, n_seeds: u64) -> Self {
        Self {
            base,
            seeds: (0..n_seeds).collect(),
            level: TelemetryLevel::Off,
            rate_jitter_frac: 0.1,
            panic_seeds: Vec::new(),
            max_events_per_seed: None,
            max_seed_wall_ms: None,
        }
    }
}

/// What happened to one seed of a network batch (the [`SeedOutcome`]
/// counterpart; no retry policy, so `Failed` carries no retry count).
#[derive(Debug)]
pub enum NetSeedOutcome {
    /// The run finished; its report is attached.
    Completed(Box<NetReport>),
    /// The run panicked or its seeded configuration failed validation;
    /// the seed is quarantined and the rest of the batch is unaffected.
    Failed {
        /// Sanitised failure cause (panic message or config error).
        cause: String,
        /// Flight recorder salvaged at the panic (`None` when
        /// collection was off or construction never succeeded).
        telemetry: Option<Box<Telemetry>>,
    },
    /// The watchdog demoted the run mid-flight.
    TimedOut {
        /// Events dispatched before the watchdog fired.
        events: u64,
        /// Flight recorder at demotion (`None` when collection was
        /// off).
        telemetry: Option<Box<Telemetry>>,
    },
}

/// The result of one network batch: per-seed outcomes in seed order
/// plus the merged telemetry aggregate, as in [`BatchReport`].
#[derive(Debug)]
pub struct NetBatchReport {
    /// The seeds, in the order the outcomes are stored.
    pub seeds: Vec<u64>,
    /// One outcome per seed, input order preserved.
    pub outcomes: Vec<NetSeedOutcome>,
    /// Completed seeds' telemetry shards merged in seed order; `None`
    /// when the level disables collection. Carries `batch.timed_out`
    /// (resume-stable) but not `batch.resumed`.
    pub telemetry: Option<Telemetry>,
    /// Supervision tallies (`retried` stays zero: network batches have
    /// no retry policy — a deterministic engine reproduces any failure
    /// exactly).
    pub supervisor: SupervisorStats,
}

impl NetBatchReport {
    /// The seeds that finished, with their reports, in seed order.
    pub fn completed(&self) -> impl Iterator<Item = (u64, &NetReport)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            NetSeedOutcome::Completed(report) => Some((seed, report.as_ref())),
            _ => None,
        })
    }

    /// The quarantined seeds with their failure causes, in seed order.
    pub fn failures(&self) -> impl Iterator<Item = (u64, &str)> {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            NetSeedOutcome::Failed { cause, .. } => Some((seed, cause.as_str())),
            _ => None,
        })
    }

    /// The watchdog-demoted seeds with their event counts, in seed
    /// order.
    pub fn timed_out(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.seeds.iter().zip(&self.outcomes).filter_map(|(&seed, out)| match out {
            NetSeedOutcome::TimedOut { events, .. } => Some((seed, *events)),
            _ => None,
        })
    }
}

/// The base network scenario perturbed for one seed: every flow's
/// initial rate jittered with the same `(seed, flow, field)` hash as
/// [`seeded_config`] (field 1, the rate field, so a flow draws the same
/// perturbation it would in the single-bottleneck runner), and the
/// fault seed remixed per seed when injection is enabled.
#[must_use]
pub fn seeded_net_config(cfg: &NetBatchConfig, seed: u64) -> NetConfig {
    let mut out = cfg.base.clone();
    for (i, flow) in out.flows.iter_mut().enumerate() {
        let dr = 1.0 + (2.0 * unit(seed, i as u64, 1) - 1.0) * cfg.rate_jitter_frac;
        flow.initial_rate *= dr;
    }
    if out.faults.enabled() {
        out.faults.seed = splitmix64(seed ^ out.faults.seed);
    }
    out
}

/// Runs one seeded network configuration under full supervision:
/// telemetry sink with per-seed span-id base, intentional panic hook,
/// event budget, and wall-clock deadline. Construction failures
/// (`NetSim::try_new`) map to [`NetSeedOutcome::Failed`].
fn run_net_seeded(
    net_cfg: NetConfig,
    seed: u64,
    level: TelemetryLevel,
    panic_after: Option<u64>,
    max_events: Option<u64>,
    max_wall_ms: Option<u64>,
) -> NetSeedOutcome {
    let t_end = net_cfg.t_end.as_secs();
    let mut sim = match NetSim::try_new(net_cfg) {
        Ok(sim) => sim,
        Err(e) => {
            return NetSeedOutcome::Failed {
                cause: sanitize_cause(&e.to_string()),
                telemetry: None,
            };
        }
    };
    let mut seed_span = 0;
    if level.enabled() {
        let mut tel = Telemetry::new(level);
        tel.set_span_id_base((seed + 1) << 32);
        seed_span = tel.span_begin(0.0, SpanKind::BatchSeed, seed as u32, 0);
        sim = sim.with_telemetry_sink(tel);
    }
    let deadline =
        max_wall_ms.map(|ms| std::time::Instant::now() + std::time::Duration::from_millis(ms));
    // Same unwind-safety argument as `run_seeded`: only the step loop is
    // wrapped, the engine stays owned out here, and after a panic it is
    // only inspected for its flight recorder, never re-run.
    let stepped = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut steps: u64 = 0;
        while sim.step() {
            steps += 1;
            if panic_after.is_some_and(|n| steps >= n) {
                panic!("seed {seed}: intentional panic (panic_seeds)");
            }
            if max_events.is_some_and(|n| steps >= n) {
                return StepEnd::Budget(steps);
            }
            if steps.is_multiple_of(WALL_CHECK_EVERY)
                && deadline.is_some_and(|d| std::time::Instant::now() >= d)
            {
                return StepEnd::Budget(steps);
            }
        }
        if panic_after.is_some() {
            panic!("seed {seed}: intentional panic (panic_seeds)");
        }
        StepEnd::Done
    }));
    match stepped {
        Ok(StepEnd::Done) => {
            let mut report = sim.finish();
            if let Some(tel) = report.telemetry.as_mut() {
                tel.span_end(t_end, seed_span);
            }
            NetSeedOutcome::Completed(Box::new(report))
        }
        Ok(StepEnd::Budget(events)) => {
            NetSeedOutcome::TimedOut { events, telemetry: sim.take_telemetry().map(Box::new) }
        }
        Err(payload) => NetSeedOutcome::Failed {
            cause: sanitize_cause(&panic_message(payload.as_ref())),
            telemetry: sim.take_telemetry().map(Box::new),
        },
    }
}

/// One seed of a network batch: seeding, the known-hazardous-seed
/// flight-recorder upgrade, and supervision.
fn run_net_seed(cfg: &NetBatchConfig, seed: u64) -> NetSeedOutcome {
    let net_cfg = seeded_net_config(cfg, seed);
    let panic_after = cfg.panic_seeds.contains(&seed).then_some(PANIC_AFTER_STEPS);
    let level = if panic_after.is_some() { TelemetryLevel::Full } else { cfg.level };
    run_net_seeded(net_cfg, seed, level, panic_after, cfg.max_events_per_seed, cfg.max_seed_wall_ms)
}

/// Runs every seed of a network batch in parallel across the configured
/// worker count and merges the telemetry shards in seed order. Output
/// is identical at any thread count (`DCE_BCN_THREADS=1` included).
#[must_use]
pub fn run_net_batch(cfg: &NetBatchConfig) -> NetBatchReport {
    run_net_batch_inner(cfg, None).expect("in-memory batch performs no checkpoint I/O")
}

/// [`run_net_batch`] with crash recovery through a
/// [`NetBatchCheckpoint`]: finished seeds are persisted before they are
/// counted and acknowledged seeds are restored bit-exactly on resume,
/// so a resumed batch's merged report equals an uninterrupted run.
///
/// # Errors
///
/// Fails on the first checkpoint I/O error — the batch aborts rather
/// than silently running uncheckpointed.
pub fn run_net_batch_checkpointed(
    cfg: &NetBatchConfig,
    ckpt: &NetBatchCheckpoint,
) -> Result<NetBatchReport, CheckpointError> {
    run_net_batch_inner(cfg, Some(ckpt))
}

fn run_net_batch_inner(
    cfg: &NetBatchConfig,
    ckpt: Option<&NetBatchCheckpoint>,
) -> Result<NetBatchReport, CheckpointError> {
    let restored: Vec<Option<NetSeedOutcome>> =
        cfg.seeds.iter().map(|&s| ckpt.and_then(|c| c.take_restored(s))).collect();
    let todo: Vec<usize> =
        restored.iter().enumerate().filter_map(|(i, r)| r.is_none().then_some(i)).collect();
    let resumed = (cfg.seeds.len() - todo.len()) as u64;
    let first_io_err: std::sync::Mutex<Option<CheckpointError>> = std::sync::Mutex::new(None);
    let fresh = parkit::par_map_indexed(todo.len(), |k| {
        let seed = cfg.seeds[todo[k]];
        let outcome = run_net_seed(cfg, seed);
        if let Some(ck) = ckpt {
            if let Err(e) = ck.record(seed, &outcome) {
                let mut slot = first_io_err.lock().expect("checkpoint error slot");
                if slot.is_none() {
                    *slot = Some(e);
                }
            }
        }
        outcome
    });
    if let Some(e) = first_io_err.into_inner().expect("checkpoint error slot") {
        return Err(e);
    }
    let mut fresh = fresh.into_iter();
    let outcomes: Vec<NetSeedOutcome> = restored
        .into_iter()
        .map(|slot| slot.unwrap_or_else(|| fresh.next().expect("one fresh outcome per gap")))
        .collect();
    let timed_out =
        outcomes.iter().filter(|o| matches!(o, NetSeedOutcome::TimedOut { .. })).count() as u64;
    let telemetry = cfg.level.enabled().then(|| {
        let mut agg = Telemetry::new(cfg.level);
        for outcome in &outcomes {
            if let NetSeedOutcome::Completed(report) = outcome {
                if let Some(shard) = &report.telemetry {
                    agg.merge(shard);
                }
            }
        }
        agg.batch_supervision(0, 0, timed_out);
        agg
    });
    Ok(NetBatchReport {
        seeds: cfg.seeds.clone(),
        outcomes,
        telemetry,
        supervisor: SupervisorStats { resumed, retried: 0, timed_out },
    })
}

/// Extracts the human-readable message from a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(n: u64) -> BatchConfig {
        let mut base = SimConfig::fluid_validation_default();
        base.t_end = Time::from_secs(0.02);
        BatchConfig { level: TelemetryLevel::Full, ..BatchConfig::quick(base, n) }
    }

    #[test]
    fn seeded_configs_are_deterministic_and_distinct() {
        let cfg = batch(2);
        let a = seeded_config(&cfg, 7);
        let b = seeded_config(&cfg, 7);
        assert_eq!(a, b, "same seed must reproduce the same scenario");
        let c = seeded_config(&cfg, 8);
        assert_ne!(a.flows, c.flows, "different seeds must differ");
        for (orig, jit) in cfg.base.flows.iter().zip(&a.flows) {
            assert!(jit.start >= orig.start);
            assert!(jit.start.as_secs() <= orig.start.as_secs() + cfg.start_jitter_secs);
            let ratio = jit.initial_rate / orig.initial_rate;
            assert!((ratio - 1.0).abs() <= cfg.rate_jitter_frac + 1e-12);
        }
    }

    #[test]
    fn zero_jitter_reproduces_the_base_scenario() {
        let mut cfg = batch(1);
        cfg.start_jitter_secs = 0.0;
        cfg.rate_jitter_frac = 0.0;
        assert_eq!(seeded_config(&cfg, 123), cfg.base);
    }

    #[test]
    fn batch_results_are_identical_at_any_thread_count() {
        let cfg = batch(4);
        parkit::set_threads(1);
        let serial = run_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_batch(&cfg);
        parkit::set_threads(0);
        assert_eq!(serial.completed().count(), 4);
        for ((_, s), (_, p)) in serial.completed().zip(parallel.completed()) {
            assert_eq!(s.metrics.delivered_frames, p.metrics.delivered_frames);
            assert_eq!(s.final_rates, p.final_rates);
            assert_eq!(s.metrics.queue.values(), p.metrics.queue.values());
        }
        let (st, pt) = (serial.telemetry.unwrap(), parallel.telemetry.unwrap());
        assert_eq!(st.metrics.counters().count(), pt.metrics.counters().count());
        for ((an, av), (bn, bv)) in st.metrics.counters().zip(pt.metrics.counters()) {
            assert_eq!((an, av), (bn, bv));
        }
        assert_eq!(st.trace.len(), pt.trace.len());
    }

    #[test]
    fn hybrid_batches_are_deterministic_and_carry_epoch_counters() {
        let params = crate::sim::fluid_validation_params();
        let base =
            SimConfig::from_fluid(&params, 8_000.0, crate::time::Duration::from_secs(2e-6), 0.3);
        let mut cfg = BatchConfig { level: TelemetryLevel::Summary, ..BatchConfig::quick(base, 3) };
        cfg.hybrid = Some(HybridSpec::new(params));
        parkit::set_threads(1);
        let serial = run_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_batch(&cfg);
        parkit::set_threads(0);
        assert_eq!(serial.completed().count(), 3);
        for ((_, s), (_, p)) in serial.completed().zip(parallel.completed()) {
            assert_eq!(s.metrics.queue.values(), p.metrics.queue.values());
            assert_eq!(s.final_rates, p.final_rates);
        }
        let (st, pt) = (serial.telemetry.unwrap(), parallel.telemetry.unwrap());
        let epochs = st.metrics.counter_by_name("hybrid.epochs");
        assert!(epochs.is_some_and(|v| v > 0), "quiescent tails should fast-forward: {epochs:?}");
        assert_eq!(epochs, pt.metrics.counter_by_name("hybrid.epochs"));
        assert_eq!(
            st.metrics.counter_by_name("hybrid.ff_ns"),
            pt.metrics.counter_by_name("hybrid.ff_ns")
        );
    }

    #[test]
    fn merged_trace_is_ordered_by_sim_time() {
        let report = run_batch(&batch(3));
        let tel = report.telemetry.expect("telemetry requested");
        let times: Vec<f64> = tel.trace.iter().map(telemetry::Event::time).collect();
        assert!(!times.is_empty(), "batch runs should emit events");
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "trace not time-sorted");
    }

    #[test]
    fn telemetry_off_skips_the_aggregate() {
        let mut cfg = batch(2);
        cfg.level = TelemetryLevel::Off;
        let report = run_batch(&cfg);
        assert!(report.telemetry.is_none());
        assert!(report.completed().all(|(_, r)| r.telemetry.is_none()));
    }

    #[test]
    fn a_panicking_seed_is_quarantined() {
        let mut cfg = batch(8);
        cfg.panic_seeds = vec![3];
        let report = run_batch(&cfg);
        assert_eq!(report.completed().count(), 7, "the other seeds must finish");
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 3);
        assert!(failures[0].1.contains("intentional panic"), "cause: {}", failures[0].1);
        // Merged telemetry covers exactly the completed seeds.
        let tel = report.telemetry.as_ref().expect("telemetry requested");
        let fb: u64 = report.completed().map(|(_, r)| r.metrics.feedback_messages).sum();
        assert_eq!(tel.metrics.counter_by_name("sim.bcn_messages"), Some(fb));
    }

    #[test]
    fn a_panicking_seed_leaves_the_merged_shard_untouched() {
        // Quarantine must be surgical: the merged telemetry with seed 3
        // panicking is byte-identical to a batch that never had seed 3.
        let mut with_panic = batch(8);
        with_panic.panic_seeds = vec![3];
        let mut without = batch(8);
        without.seeds.retain(|&s| s != 3);
        let a = run_batch(&with_panic).telemetry.expect("telemetry requested");
        let b = run_batch(&without).telemetry.expect("telemetry requested");
        assert_eq!(a.trace_to_jsonl(), b.trace_to_jsonl(), "merged traces differ");
        let ca: Vec<_> = a.metrics.counters().collect();
        let cb: Vec<_> = b.metrics.counters().collect();
        assert_eq!(ca, cb, "merged counters differ");
    }

    #[test]
    fn a_panicking_seed_surrenders_its_flight_recorder() {
        // Even with batch telemetry off, a known-hazardous seed records a
        // full flight recorder and hands it over on failure.
        let mut cfg = batch(4);
        cfg.level = TelemetryLevel::Off;
        cfg.panic_seeds = vec![2];
        let report = run_batch(&cfg);
        let (seed, cause, tel) = report.postmortems().next().expect("one failure");
        assert_eq!(seed, 2);
        assert!(cause.contains("intentional panic"), "cause: {cause}");
        let tel = tel.expect("flight recorder captured");
        assert!(!tel.trace.is_empty(), "flight recorder trace is empty");
        let spans = tel.open_spans();
        assert!(!spans.is_empty(), "open-span stack is empty");
        assert_eq!(spans[0].kind, SpanKind::BatchSeed, "seed span must anchor the stack");
        assert_eq!(spans[0].entity, 2);
        assert_eq!(spans[0].id, (3 << 32) + 1, "span ids must use the per-seed base");
        // Completed seeds are unaffected by the neighbour's upgrade.
        assert_eq!(report.completed().count(), 3);
        assert!(report.completed().all(|(_, r)| r.telemetry.is_none()));
    }

    #[test]
    fn merged_batch_telemetry_carries_scheduler_stats() {
        let report = run_batch(&batch(3));
        let tel = report.telemetry.expect("telemetry requested");
        let scheduled = tel.metrics.counter_by_name("scheduler.events_scheduled");
        let executed = tel.metrics.counter_by_name("scheduler.events_popped");
        assert!(scheduled.is_some_and(|v| v > 0), "scheduler.events_scheduled missing from merge");
        assert!(executed.is_some_and(|v| v > 0), "scheduler.events_popped missing from merge");
        // Summed across shards: each of the three seeds contributes.
        assert!(scheduled.unwrap() >= 3, "expected per-seed flushes to accumulate");
    }

    #[test]
    fn batch_seed_spans_bracket_each_completed_run() {
        let report = run_batch(&batch(2));
        let tel = report.telemetry.expect("telemetry requested");
        let begins: Vec<_> = tel
            .trace
            .iter()
            .filter_map(|e| match e {
                telemetry::Event::SpanBegin { id, kind: SpanKind::BatchSeed, entity, .. } => {
                    Some((*id, *entity))
                }
                _ => None,
            })
            .collect();
        assert_eq!(begins, vec![((1 << 32) + 1, 0), ((2 << 32) + 1, 1)]);
        for (id, _) in begins {
            let ended = tel
                .trace
                .iter()
                .any(|e| matches!(e, telemetry::Event::SpanEnd { id: eid, .. } if *eid == id));
            assert!(ended, "seed span {id:#x} never closed");
        }
        assert!(tel.open_spans().is_empty(), "merged shard must not report open spans");
    }

    #[test]
    fn an_invalid_seeded_config_fails_without_panicking() {
        let mut cfg = batch(3);
        cfg.base.capacity = 0.0;
        let report = run_batch(&cfg);
        assert_eq!(report.completed().count(), 0);
        for (_, cause) in report.failures() {
            assert!(cause.contains("capacity"), "cause: {cause}");
        }
    }

    #[test]
    fn fault_plans_replay_identically_at_any_thread_count() {
        let mut cfg = batch(4);
        cfg.base.faults.seed = 99;
        cfg.base.faults.feedback_loss = 0.25;
        cfg.base.faults.data_loss = 0.02;
        parkit::set_threads(1);
        let serial = run_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_batch(&cfg);
        parkit::set_threads(0);
        let a: Vec<_> = serial.completed().map(|(s, r)| (s, r.metrics.faults.clone())).collect();
        let b: Vec<_> = parallel.completed().map(|(s, r)| (s, r.metrics.faults.clone())).collect();
        assert_eq!(a, b, "fault decisions must not depend on the thread count");
        assert!(a.iter().any(|(_, f)| f.total() > 0), "faults were actually injected");
        // Distinct seeds draw distinct fault streams.
        assert!(a.windows(2).any(|w| w[0].1 != w[1].1), "per-seed fault streams identical");
    }

    #[test]
    fn fault_free_base_keeps_seeded_configs_untouched_by_the_fault_layer() {
        let cfg = batch(1);
        assert!(!cfg.base.faults.enabled());
        let seeded = seeded_config(&cfg, 42);
        assert_eq!(seeded.faults, cfg.base.faults, "fault seed must not be mixed when disabled");
    }

    /// Byte-level fingerprint of a whole batch report: every outcome
    /// through the checkpoint codec plus the merged aggregate through
    /// the snapshot codec. Equal fingerprints mean equal artifacts.
    fn fingerprint(report: &BatchReport) -> String {
        let mut s = String::new();
        for (&seed, out) in report.seeds.iter().zip(&report.outcomes) {
            crate::checkpoint::encode_seed_outcome(seed, out, &mut s);
        }
        if let Some(tel) = &report.telemetry {
            s.push_str(&telemetry::snapshot_to_jsonl(tel));
        }
        s
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dcesim-batch-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    #[test]
    fn watchdog_demotes_runaway_seeds_deterministically() {
        let mut cfg = batch(3);
        cfg.max_events_per_seed = Some(150);
        let report = run_batch(&cfg);
        assert_eq!(report.completed().count(), 0, "the budget is far below a full run");
        let demoted: Vec<_> = report.timed_out().collect();
        assert_eq!(demoted.len(), 3);
        assert!(demoted.iter().all(|&(_, events)| events == 150), "demoted: {demoted:?}");
        assert_eq!(report.supervisor.timed_out, 3);
        let tel = report.telemetry.as_ref().expect("telemetry requested");
        assert_eq!(tel.metrics.counter_by_name("batch.timed_out"), Some(3));
        // The flight recorder is attached, seed span still open.
        let (_, _, flight) = report.postmortems().next().expect("postmortems cover timeouts");
        let flight = flight.expect("flight recorder captured");
        assert!(!flight.open_spans().is_empty(), "seed span should still be open");
        // Demotion is an event-count verdict: identical at any width.
        parkit::set_threads(1);
        let serial = run_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_batch(&cfg);
        parkit::set_threads(0);
        assert_eq!(fingerprint(&serial), fingerprint(&parallel));
    }

    #[test]
    fn failing_seeds_are_retried_up_to_the_budget() {
        let mut cfg = batch(4);
        cfg.panic_seeds = vec![2];
        cfg.max_seed_retries = 2;
        let report = run_batch(&cfg);
        assert_eq!(report.completed().count(), 3);
        let retries: Vec<_> = report
            .outcomes
            .iter()
            .filter_map(|o| match o {
                SeedOutcome::Failed { retries, .. } => Some(*retries),
                _ => None,
            })
            .collect();
        assert_eq!(retries, vec![2], "a deterministic panic burns the whole retry budget");
        assert_eq!(report.supervisor.retried, 2);
        let tel = report.telemetry.as_ref().expect("telemetry requested");
        assert_eq!(tel.metrics.counter_by_name("batch.retried"), Some(2));
    }

    #[test]
    fn resumed_batches_are_bit_identical_at_any_kill_point_and_width() {
        let mut cfg = batch(6);
        cfg.panic_seeds = vec![4];
        cfg.base.faults.seed = 11;
        cfg.base.faults.feedback_loss = 0.15;
        let want = fingerprint(&run_batch(&cfg));
        for (kill_after, width) in [(0usize, 1usize), (2, 4), (5, 1), (6, 4)] {
            let dir = scratch(&format!("kill{kill_after}w{width}"));
            // First run: "crashes" after recording `kill_after` seeds.
            let ck = crate::checkpoint::BatchCheckpoint::create(&dir, &cfg).expect("create");
            let partial = BatchConfig { seeds: cfg.seeds[..kill_after].to_vec(), ..cfg.clone() };
            run_batch_checkpointed(&partial, &ck).expect("partial run");
            drop(ck);
            // Resume with the full seed list at the requested width.
            parkit::set_threads(width);
            let ck = crate::checkpoint::BatchCheckpoint::resume(&dir, &cfg).expect("resume");
            assert_eq!(ck.restored_seeds().len(), kill_after);
            let resumed = run_batch_checkpointed(&cfg, &ck).expect("resumed run");
            parkit::set_threads(0);
            assert_eq!(resumed.supervisor.resumed, kill_after as u64);
            assert_eq!(
                fingerprint(&resumed),
                want,
                "kill point {kill_after} width {width} diverged"
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn replay_reproduces_a_recorded_panic_and_flags_divergence() {
        let mut cfg = batch(4);
        cfg.panic_seeds = vec![1];
        let report = run_batch(&cfg);
        let (seed, cause, _) = report.postmortems().next().expect("one quarantined seed");
        let spec = crate::checkpoint::ReplaySpec {
            seed,
            cause: cause.clone(),
            config: seeded_config(&cfg, seed),
            panic_after: Some(256),
            max_events: None,
        };
        assert_eq!(replay(&spec).expect("panic must reproduce"), cause);
        // Drop the panic trigger: the run completes, which is a typed
        // divergence, not a success.
        let clean = crate::checkpoint::ReplaySpec { panic_after: None, ..spec.clone() };
        let err = replay(&clean).unwrap_err();
        assert_eq!(err.expected, cause);
        assert_eq!(err.got, None);
        // A wrong expected cause diverges with the reproduced one.
        let wrong = crate::checkpoint::ReplaySpec { cause: "other".into(), ..spec };
        let err = replay(&wrong).unwrap_err();
        assert_eq!(err.got.as_deref(), Some(cause.as_str()));
    }

    #[test]
    fn replay_reproduces_watchdog_timeouts() {
        let mut cfg = batch(2);
        cfg.max_events_per_seed = Some(120);
        let report = run_batch(&cfg);
        let (seed, cause, _) = report.postmortems().next().expect("a demoted seed");
        assert!(cause.contains("watchdog"), "cause: {cause}");
        let spec = crate::checkpoint::ReplaySpec {
            seed,
            cause: cause.clone(),
            config: seeded_config(&cfg, seed),
            panic_after: None,
            max_events: Some(120),
        };
        assert_eq!(replay(&spec).expect("timeout must reproduce"), cause);
    }

    /// A small generator-built incast fabric for the net-batch tests.
    fn net_batch(n: u64) -> NetBatchConfig {
        let spec = crate::topo::TopoSpec::leaf_spine(2, 2, 4);
        let traffic = crate::topo::Traffic::Incast { senders: 4, dst: usize::MAX, load: 2.0 };
        let base = crate::topo::compile(&spec, &traffic, 0.005).expect("compile");
        NetBatchConfig { level: TelemetryLevel::Summary, ..NetBatchConfig::quick(base, n) }
    }

    #[test]
    fn seeded_net_configs_are_deterministic_and_jitter_only_rates() {
        let cfg = net_batch(2);
        let a = seeded_net_config(&cfg, 7);
        assert_eq!(a, seeded_net_config(&cfg, 7), "same seed must reproduce");
        assert_ne!(a.flows, seeded_net_config(&cfg, 8).flows, "different seeds must differ");
        for (orig, jit) in cfg.base.flows.iter().zip(&a.flows) {
            let ratio = jit.initial_rate / orig.initial_rate;
            assert!((ratio - 1.0).abs() <= cfg.rate_jitter_frac + 1e-12);
            assert_eq!((orig.src_host, orig.dst_host), (jit.src_host, jit.dst_host));
        }
        let mut zero = cfg.clone();
        zero.rate_jitter_frac = 0.0;
        assert_eq!(seeded_net_config(&zero, 123), zero.base);
    }

    #[test]
    fn net_batch_results_are_identical_at_any_thread_count_and_scheduler() {
        let cfg = net_batch(3);
        let mut heap_cfg = cfg.clone();
        heap_cfg.base.scheduler = crate::sched::Scheduler::Heap;
        parkit::set_threads(1);
        let serial = run_net_batch(&cfg);
        parkit::set_threads(4);
        let parallel = run_net_batch(&cfg);
        let heap = run_net_batch(&heap_cfg);
        parkit::set_threads(0);
        assert_eq!(serial.completed().count(), 3);
        for ((_, s), (_, p)) in serial.completed().zip(parallel.completed()) {
            assert_eq!(s.flows, p.flows);
            assert_eq!(s.pause_counts, p.pause_counts);
        }
        // Scheduler bit-identity extends from single runs to batches.
        for ((_, s), (_, h)) in serial.completed().zip(heap.completed()) {
            assert_eq!(s.flows, h.flows);
            for (a, b) in s.switch_queues.iter().zip(&h.switch_queues) {
                assert_eq!(a.values(), b.values());
            }
        }
        let (st, pt) = (serial.telemetry.unwrap(), parallel.telemetry.unwrap());
        for ((an, av), (bn, bv)) in st.metrics.counters().zip(pt.metrics.counters()) {
            assert_eq!((an, av), (bn, bv));
        }
    }

    #[test]
    fn net_batch_quarantines_panics_and_demotes_runaways() {
        let mut cfg = net_batch(4);
        cfg.panic_seeds = vec![1];
        cfg.max_events_per_seed = Some(2_000);
        let report = run_net_batch(&cfg);
        let failures: Vec<_> = report.failures().collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 1);
        assert!(failures[0].1.contains("intentional panic"), "cause: {}", failures[0].1);
        // The hazardous-seed flight-recorder upgrade applies here too.
        let salvaged = report
            .outcomes
            .iter()
            .any(|o| matches!(o, NetSeedOutcome::Failed { telemetry: Some(_), .. }));
        assert!(salvaged, "panicking seed must surrender its flight recorder");
        assert_eq!(report.timed_out().count(), 3, "remaining seeds hit the event budget");
        assert_eq!(report.supervisor.timed_out, 3);
    }

    #[test]
    fn net_batch_rejects_invalid_seeded_configs_as_failures() {
        let mut cfg = net_batch(2);
        cfg.base.switches[0].routes.clear();
        let report = run_net_batch(&cfg);
        assert_eq!(report.completed().count(), 0);
        assert_eq!(report.failures().count(), 2);
        for (_, cause) in report.failures() {
            assert!(cause.contains("unroutable"), "cause: {cause}");
        }
    }
}
