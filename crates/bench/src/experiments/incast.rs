//! Incast experiment: the cluster-file-system traffic pattern the paper
//! cites as DCE's canonical workload (parallel reads answered by many
//! servers at once), swept over the fan-in degree.
//!
//! For each fan-in `n`, `n` servers simultaneously answer with a fixed
//! block. Without congestion management the synchronized burst overflows
//! the bottleneck buffer and drops grow with `n`; with BCN the reaction
//! points throttle within the first feedback round-trips and the
//! transfer completes lossless, at the cost of a longer (but bounded)
//! completion time. Queueing-delay percentiles quantify the latency side
//! of the paper's "low latency, no loss" goal.

use std::path::Path;

use dcesim::sim::{fluid_validation_params, Control, SimConfig, Simulation};
use dcesim::time::{Duration, Time};
use dcesim::workload;
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

const FRAME: f64 = 8_000.0;

/// Runs the experiment; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Incast sweep: drops and latency vs fan-in");
    let params = fluid_validation_params();
    let block = 300.0 * FRAME; // ~300 frames per server
    let t_end = 0.4;

    let mut table = Table::new(&[
        "fan-in",
        "scheme",
        "drops",
        "drop rate",
        "p99 queueing delay (us)",
        "completion (all blocks, s)",
    ]);
    let mut csv = Csv::new(&["fan_in", "bcn", "drops", "p99_delay", "completion"]);
    let mut fan_ins = Vec::new();
    let mut drops_none = Vec::new();
    let mut drops_bcn = Vec::new();

    for n in [4usize, 8, 16, 32] {
        for (scheme, use_bcn) in [("drop-tail", false), ("BCN", true)] {
            let mut cfg = SimConfig::from_fluid(&params, FRAME, Duration::from_secs(2e-6), t_end);
            cfg.t_end = Time::from_secs(t_end);
            // Each server bursts at an aggressive initial rate.
            cfg.flows = workload::incast(n, params.capacity / 4.0, block);
            if !use_bcn {
                cfg.control = Control::None;
            }
            let report = Simulation::new(cfg).run();
            let m = &report.metrics;
            let total_needed = block * n as f64;
            let completion = if m.delivered_bits >= total_needed - FRAME {
                // Completion = delivered volume / capacity is a lower
                // bound; report the measured wall time via throughput.
                m.delivered_bits / params.capacity
            } else {
                f64::NAN
            };
            table.row(&[
                n.to_string(),
                scheme.to_string(),
                m.dropped_frames.to_string(),
                format!("{:.4}", m.drop_rate()),
                format!("{:.1}", m.queueing_delay.percentile(0.99) * 1e6),
                format!("{completion:.4}"),
            ]);
            csv.row(&[
                n as f64,
                f64::from(u8::from(use_bcn)),
                m.dropped_frames as f64,
                m.queueing_delay.percentile(0.99),
                completion,
            ]);
            if use_bcn {
                drops_bcn.push(m.dropped_frames as f64);
            } else {
                drops_none.push(m.dropped_frames as f64);
                fan_ins.push(n as f64);
            }
        }
    }
    print!("{table}");

    csv.save(out.join("exp_incast.csv"))?;
    println!("wrote {}", out.join("exp_incast.csv").display());
    let plot = SvgPlot::new("Incast drops vs fan-in", "fan-in (servers)", "dropped frames")
        .with_series(Series::line("drop-tail", &fan_ins, &drops_none, COLOR_CYCLE[0]))
        .with_series(Series::line("BCN", &fan_ins, &drops_bcn, COLOR_CYCLE[1]));
    save_plot(&plot, out, "exp_incast.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("incast_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("exp_incast.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
