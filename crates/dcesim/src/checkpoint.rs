//! Crash-recoverable batch checkpoints and postmortem replay specs.
//!
//! A batch run can be pointed at a checkpoint directory
//! ([`BatchCheckpoint`]): every finished seed is persisted as a
//! self-contained JSONL *shard* (`seed-<seed>.jsonl`) holding the full
//! [`SeedOutcome`] — metrics, recorded series, fault tallies, and the
//! seed's telemetry shard via the bit-exact snapshot codec — and then
//! acknowledged in an append-only `manifest.jsonl`. Shards are written
//! atomically (tmp + fsync + rename + directory fsync) and the manifest
//! is fsynced after every acknowledgement, so a run killed at *any*
//! instant — `SIGKILL` mid-seed included — leaves the directory in a
//! state a `--resume` run can pick up: acknowledged seeds are restored
//! bit-exactly, everything else (including a torn trailing manifest
//! line or an orphaned `seed-N.tmp`) is simply re-run. Because the
//! simulator is deterministic, the merged report of a resumed batch is
//! byte-identical to an uninterrupted run.
//!
//! The same codec makes postmortem dumps self-describing: a quarantined
//! seed's dump embeds its fully seeded [`SimConfig`] (fault plan
//! included), its panic/watchdog triggers, and a config digest, so
//! `dcebcn replay <dump>` can reconstruct a [`ReplaySpec`] and re-run
//! the exact crashing scenario with no access to the original command
//! line.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use telemetry::{
    check_schema_header, fmt_num, parse_scalars, schema_header, snapshot_from_jsonl,
    snapshot_to_jsonl, JsonlError, Scalar,
};

use crate::batch::{BatchConfig, NetBatchConfig, NetSeedOutcome, SeedOutcome};
use crate::cp::{CpConfig, FbQuant};
use crate::faults::{splitmix64, FaultConfig, FaultCounts};
use crate::frame::CpId;
use crate::metrics::SimMetrics;
use crate::net::{Endpoint, FlowStats, NetConfig, NetReport};
use crate::qcn::{QcnCpConfig, QcnRpConfig};
use crate::rp::RpConfig;
use crate::sched::Scheduler;
use crate::sim::{Control, SimConfig, SimReport};
use crate::time::{Duration, Time};
use crate::workload::FlowSpec;

/// The manifest file name inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.jsonl";

/// Largest integer the flat JSONL codec round-trips exactly (2^53);
/// wider values are split into 32-bit halves.
const MASK_53: u64 = (1 << 53) - 1;

/// Errors from checkpoint persistence, decoding, or replay parsing.
#[derive(Debug)]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io(std::io::Error),
    /// A checkpoint or postmortem file is malformed or truncated.
    Format(String),
    /// The checkpoint directory belongs to a different batch
    /// configuration; resuming would silently mix incompatible runs.
    ConfigMismatch {
        /// Digest of the configuration being resumed.
        expected: u64,
        /// Digest recorded in the on-disk manifest.
        found: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::Format(msg) => write!(f, "checkpoint format: {msg}"),
            CheckpointError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different batch configuration \
                 (manifest digest {found:#x}, this run {expected:#x}); \
                 use a fresh --checkpoint-dir"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<JsonlError> for CheckpointError {
    fn from(e: JsonlError) -> Self {
        CheckpointError::Format(e.0)
    }
}

// ---------------------------------------------------------------------
// Config digests
// ---------------------------------------------------------------------

fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

fn mix_f(h: u64, v: f64) -> u64 {
    mix(h, v.to_bits())
}

fn mix_opt_f(h: u64, v: Option<f64>) -> u64 {
    match v {
        Some(x) => mix_f(mix(h, 1), x),
        None => mix(h, 0),
    }
}

/// Order-sensitive digest of a fully seeded [`SimConfig`], folded with
/// splitmix64 over every field and masked below 2^53 so it survives the
/// JSONL number path. Postmortem dumps embed it so `replay` can detect
/// a truncated or hand-edited config block.
#[must_use]
pub fn sim_config_digest(cfg: &SimConfig) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15;
    h = mix_f(h, cfg.capacity);
    h = mix_f(h, cfg.buffer_bits);
    h = mix_f(h, cfg.frame_bits);
    h = mix(h, cfg.prop_delay.as_nanos());
    h = mix(h, cfg.t_end.as_nanos());
    h = mix(h, cfg.record_interval.as_nanos());
    h = mix(h, cfg.pause_hold.as_nanos());
    h = mix(h, cfg.flows.len() as u64);
    for flow in &cfg.flows {
        h = mix(h, flow.start.as_nanos());
        h = match flow.stop {
            Some(t) => mix(mix(h, 1), t.as_nanos()),
            None => mix(h, 0),
        };
        h = mix_f(h, flow.initial_rate);
        h = mix_opt_f(h, flow.volume_bits);
    }
    h = match &cfg.control {
        Control::Bcn { cp, rp } => {
            let mut h = mix(h, 1);
            h = mix(h, cp.cpid.0);
            h = mix_f(h, cp.q0_bits);
            h = mix_f(h, cp.qsc_bits);
            h = mix_f(h, cp.w);
            h = mix(h, cp.sample_every);
            h = match cp.fb_quant {
                Some(q) => mix_f(mix(mix(h, 1), u64::from(q.bits)), q.range_bits),
                None => mix(h, 0),
            };
            h = mix(h, u64::from(cp.gate_positive));
            h = mix_f(h, rp.gi);
            h = mix_f(h, rp.gd);
            h = mix_f(h, rp.ru);
            h = mix_f(h, rp.gain_scale);
            h = mix_f(h, rp.r_min);
            mix_f(h, rp.r_max)
        }
        Control::Qcn { cp, rp } => {
            let mut h = mix(h, 2);
            h = mix_f(h, cp.q_eq_bits);
            h = mix_f(h, cp.w);
            h = mix(h, cp.sample_every);
            h = mix_f(h, rp.gd);
            h = mix_f(h, rp.bc_limit_bits);
            h = mix(h, u64::from(rp.fr_cycles));
            h = mix_f(h, rp.r_ai);
            h = mix_f(h, rp.r_hai);
            h = mix_f(h, rp.r_min);
            mix_f(h, rp.r_max)
        }
        Control::None => mix(h, 3),
    };
    h = mix_fault_plan(h, &cfg.faults);
    h = mix(h, scheduler_tag(cfg.scheduler));
    h & MASK_53
}

fn mix_fault_plan(mut h: u64, fl: &FaultConfig) -> u64 {
    h = mix(h, fl.seed);
    h = mix_f(h, fl.feedback_loss);
    h = mix_f(h, fl.feedback_corrupt);
    h = mix(h, fl.feedback_extra_delay.as_nanos());
    h = mix_f(h, fl.feedback_reorder);
    h = mix(h, fl.reorder_window.as_nanos());
    h = mix_f(h, fl.data_loss);
    h = mix(h, fl.data_burst_len);
    h = mix(h, fl.link_flap_period.as_nanos());
    h = mix(h, fl.link_flap_down.as_nanos());
    h = mix_f(h, fl.pause_storm);
    mix_f(h, fl.pause_storm_factor)
}

fn mix_endpoint(h: u64, e: Endpoint) -> u64 {
    match e {
        Endpoint::Host(i) => mix(mix(h, 0), i as u64),
        Endpoint::Switch(i) => mix(mix(h, 1), i as u64),
    }
}

fn mix_cp_config(mut h: u64, cp: &CpConfig) -> u64 {
    h = mix(h, cp.cpid.0);
    h = mix_f(h, cp.q0_bits);
    h = mix_f(h, cp.qsc_bits);
    h = mix_f(h, cp.w);
    h = mix(h, cp.sample_every);
    h = match cp.fb_quant {
        Some(q) => mix_f(mix(mix(h, 1), u64::from(q.bits)), q.range_bits),
        None => mix(h, 0),
    };
    mix(h, u64::from(cp.gate_positive))
}

/// Order-sensitive digest of a fully seeded [`NetConfig`] — the
/// multi-hop counterpart of [`sim_config_digest`], folding topology
/// (switches, routes, congestion points, links), flows, PAUSE policy,
/// fault plan, and scheduler.
#[must_use]
pub fn net_config_digest(cfg: &NetConfig) -> u64 {
    let mut h = 0x85eb_ca6b_c2b2_ae35;
    h = mix(h, cfg.hosts as u64);
    h = mix(h, cfg.switches.len() as u64);
    for sw in &cfg.switches {
        h = mix_f(h, sw.buffer_bits);
        h = mix_f(h, sw.qsc_bits);
        h = mix(h, sw.routes.len() as u64);
        for &(dst, link) in &sw.routes {
            h = mix(mix(h, dst as u64), link as u64);
        }
        h = mix(h, sw.cps.len() as u64);
        for (link, cp) in &sw.cps {
            h = mix_cp_config(mix(h, *link as u64), cp);
        }
    }
    h = mix(h, cfg.links.len() as u64);
    for l in &cfg.links {
        h = mix_endpoint(h, l.from);
        h = mix_endpoint(h, l.to);
        h = mix_f(h, l.capacity);
        h = mix(h, l.delay.as_nanos());
    }
    h = mix(h, cfg.flows.len() as u64);
    for f in &cfg.flows {
        h = mix(h, f.src_host as u64);
        h = mix(h, f.dst_host as u64);
        h = mix_f(h, f.initial_rate);
        h = match &f.rp {
            Some(rp) => {
                let mut h = mix(h, 1);
                h = mix_f(h, rp.gi);
                h = mix_f(h, rp.gd);
                h = mix_f(h, rp.ru);
                h = mix_f(h, rp.gain_scale);
                h = mix_f(h, rp.r_min);
                mix_f(h, rp.r_max)
            }
            None => mix(h, 0),
        };
        h = mix(h, u64::from(f.priority));
    }
    h = mix_f(h, cfg.frame_bits);
    h = mix(h, cfg.t_end.as_nanos());
    h = mix(h, cfg.record_interval.as_nanos());
    h = mix(h, u64::from(cfg.pause.enabled));
    h = mix(h, cfg.pause.hold.as_nanos());
    h = mix(h, u64::from(cfg.pause.per_priority));
    h = mix_fault_plan(h, &cfg.faults);
    h = mix(h, scheduler_tag(cfg.scheduler));
    h & MASK_53
}

/// Digest identifying a whole [`NetBatchConfig`] (base scenario, seed
/// list, jitter, supervision policy), the resume-compatibility check
/// for [`NetBatchCheckpoint`].
#[must_use]
pub fn net_batch_config_digest(cfg: &NetBatchConfig) -> u64 {
    let mut h = mix(0x2545_f491_4f6c_dd1d, net_config_digest(&cfg.base));
    h = mix(h, cfg.seeds.len() as u64);
    for &s in &cfg.seeds {
        h = mix(h, s);
    }
    h = mix(h, cfg.level as u64);
    h = mix_f(h, cfg.rate_jitter_frac);
    h = mix(h, cfg.panic_seeds.len() as u64);
    for &s in &cfg.panic_seeds {
        h = mix(h, s);
    }
    h = match cfg.max_events_per_seed {
        Some(n) => mix(mix(h, 1), n),
        None => mix(h, 0),
    };
    h = match cfg.max_seed_wall_ms {
        Some(n) => mix(mix(h, 1), n),
        None => mix(h, 0),
    };
    h & MASK_53
}

/// Digest identifying a whole [`BatchConfig`] — the base scenario plus
/// everything that shapes per-seed outcomes (seed list, jitters,
/// telemetry level, panic hooks, watchdog and retry policy). A resume
/// whose digest differs from the manifest's is rejected with
/// [`CheckpointError::ConfigMismatch`].
#[must_use]
pub fn batch_config_digest(cfg: &BatchConfig) -> u64 {
    let mut h = mix(0xa076_1d64_78bd_642f, sim_config_digest(&cfg.base));
    h = mix(h, cfg.seeds.len() as u64);
    for &s in &cfg.seeds {
        h = mix(h, s);
    }
    h = mix(h, cfg.level as u64);
    h = mix_f(h, cfg.start_jitter_secs);
    h = mix_f(h, cfg.rate_jitter_frac);
    h = mix(h, cfg.panic_seeds.len() as u64);
    for &s in &cfg.panic_seeds {
        h = mix(h, s);
    }
    h = match cfg.max_events_per_seed {
        Some(n) => mix(mix(h, 1), n),
        None => mix(h, 0),
    };
    h = match cfg.max_seed_wall_ms {
        Some(n) => mix(mix(h, 1), n),
        None => mix(h, 0),
    };
    h = mix(h, u64::from(cfg.max_seed_retries));
    h = mix(h, cfg.retry_backoff_ms);
    h = match &cfg.hybrid {
        Some(spec) => {
            let mut h = mix(h, 1);
            let p = &spec.params;
            h = mix(h, u64::from(p.n_flows));
            for v in [p.capacity, p.q0, p.buffer, p.gi, p.gd, p.ru, p.w, p.pm, p.qsc] {
                h = mix_f(h, v);
            }
            let g = &spec.guards;
            h = mix(h, u64::from(g.always_packet));
            h = mix_f(h, g.min_ff_secs);
            h = mix_f(h, g.max_ff_secs);
            h = mix_f(h, g.eq_frac);
            h = mix_f(h, g.q_margin_frac);
            mix(h, u64::from(g.max_legs))
        }
        None => mix(h, 0),
    };
    h & MASK_53
}

fn scheduler_tag(s: Scheduler) -> u64 {
    match s {
        Scheduler::Wheel => 0,
        Scheduler::Heap => 1,
    }
}

// ---------------------------------------------------------------------
// Record helpers
// ---------------------------------------------------------------------

type Fields = Vec<(String, Scalar)>;

fn field<'a>(fields: &'a Fields, key: &str) -> Result<&'a Scalar, CheckpointError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| CheckpointError::Format(format!("missing field `{key}`")))
}

fn next_record<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
    what: &str,
) -> Result<Fields, CheckpointError> {
    let line = lines
        .next()
        .ok_or_else(|| CheckpointError::Format(format!("truncated checkpoint: expected {what}")))?;
    Ok(parse_scalars(line)?)
}

fn expect_type(fields: &Fields, want: &str) -> Result<(), CheckpointError> {
    let ty = field(fields, "type")?.as_str("type")?;
    if ty != want {
        return Err(CheckpointError::Format(format!("expected `{want}` record, found `{ty}`")));
    }
    Ok(())
}

fn get_f64(fields: &Fields, key: &str) -> Result<f64, CheckpointError> {
    Ok(field(fields, key)?.as_f64(key)?)
}

fn get_u64(fields: &Fields, key: &str) -> Result<u64, CheckpointError> {
    Ok(field(fields, key)?.as_u64(key)?)
}

fn get_u32(fields: &Fields, key: &str) -> Result<u32, CheckpointError> {
    Ok(field(fields, key)?.as_u32(key)?)
}

fn get_bool(fields: &Fields, key: &str) -> Result<bool, CheckpointError> {
    Ok(field(fields, key)?.as_bool(key)?)
}

fn get_str<'a>(fields: &'a Fields, key: &str) -> Result<&'a str, CheckpointError> {
    Ok(field(fields, key)?.as_str(key)?)
}

/// Writes a full-range `u64` as two 32-bit halves (`<key>_hi`,
/// `<key>_lo`): post-splitmix seeds and CPIDs use the whole 64-bit
/// range, which the f64-funnelled number path cannot carry in one
/// piece.
fn put_split_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, r#","{key}_hi":{},"{key}_lo":{}"#, v >> 32, v & 0xffff_ffff);
}

fn get_split_u64(fields: &Fields, key: &str) -> Result<u64, CheckpointError> {
    let hi = get_u64(fields, &format!("{key}_hi"))?;
    let lo = get_u64(fields, &format!("{key}_lo"))?;
    if hi > u64::from(u32::MAX) || lo > u64::from(u32::MAX) {
        return Err(CheckpointError::Format(format!("field `{key}` halves exceed 32 bits")));
    }
    Ok((hi << 32) | lo)
}

fn pack_f64s(vals: &[f64]) -> String {
    let mut out = String::new();
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&fmt_num(*v));
    }
    out
}

fn unpack_f64s(packed: &str, what: &str) -> Result<Vec<f64>, CheckpointError> {
    if packed.is_empty() {
        return Ok(Vec::new());
    }
    packed.split(',').map(|tok| parse_num(tok, what)).collect()
}

fn pack_u64s(vals: &[u64]) -> String {
    let mut out = String::new();
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out
}

fn unpack_u64s(packed: &str, what: &str) -> Result<Vec<u64>, CheckpointError> {
    if packed.is_empty() {
        return Ok(Vec::new());
    }
    packed
        .split(',')
        .map(|tok| {
            tok.parse::<u64>()
                .map_err(|_| CheckpointError::Format(format!("bad count `{tok}` in {what}")))
        })
        .collect()
}

fn parse_num(tok: &str, what: &str) -> Result<f64, CheckpointError> {
    match tok {
        "NaN" => Ok(f64::NAN),
        "inf" => Ok(f64::INFINITY),
        "-inf" => Ok(f64::NEG_INFINITY),
        _ => tok
            .parse::<f64>()
            .map_err(|_| CheckpointError::Format(format!("bad number `{tok}` in {what}"))),
    }
}

// ---------------------------------------------------------------------
// Seeded-config codec (shared by postmortem dumps and replay)
// ---------------------------------------------------------------------

/// Appends the self-describing record block for a fully seeded
/// [`SimConfig`]: a `sim_config` header (with digest), the control
/// parameters, every flow, and the seeded fault plan. The inverse is
/// [`decode_sim_config`].
pub fn encode_sim_config(cfg: &SimConfig, out: &mut String) {
    let control = match cfg.control {
        Control::Bcn { .. } => "bcn",
        Control::Qcn { .. } => "qcn",
        Control::None => "none",
    };
    let _ = writeln!(
        out,
        r#"{{"type":"sim_config","digest":{},"capacity":{},"buffer_bits":{},"frame_bits":{},"prop_delay_ns":{},"t_end_ns":{},"record_interval_ns":{},"pause_hold_ns":{},"scheduler":"{}","control":"{}","flows":{}}}"#,
        sim_config_digest(cfg),
        fmt_num(cfg.capacity),
        fmt_num(cfg.buffer_bits),
        fmt_num(cfg.frame_bits),
        cfg.prop_delay.as_nanos(),
        cfg.t_end.as_nanos(),
        cfg.record_interval.as_nanos(),
        cfg.pause_hold.as_nanos(),
        cfg.scheduler.name(),
        control,
        cfg.flows.len(),
    );
    match &cfg.control {
        Control::Bcn { cp, rp } => {
            let mut line = String::from(r#"{"type":"bcn_cp""#);
            put_split_u64(&mut line, "cpid", cp.cpid.0);
            let _ = write!(
                line,
                r#","q0_bits":{},"qsc_bits":{},"w":{},"sample_every":{},"gate_positive":{},"has_fb_quant":{}"#,
                fmt_num(cp.q0_bits),
                fmt_num(cp.qsc_bits),
                fmt_num(cp.w),
                cp.sample_every,
                cp.gate_positive,
                cp.fb_quant.is_some(),
            );
            if let Some(q) = cp.fb_quant {
                let _ = write!(
                    line,
                    r#","fb_bits":{},"fb_range_bits":{}"#,
                    q.bits,
                    fmt_num(q.range_bits)
                );
            }
            line.push('}');
            out.push_str(&line);
            out.push('\n');
            let _ = writeln!(
                out,
                r#"{{"type":"bcn_rp","gi":{},"gd":{},"ru":{},"gain_scale":{},"r_min":{},"r_max":{}}}"#,
                fmt_num(rp.gi),
                fmt_num(rp.gd),
                fmt_num(rp.ru),
                fmt_num(rp.gain_scale),
                fmt_num(rp.r_min),
                fmt_num(rp.r_max),
            );
        }
        Control::Qcn { cp, rp } => {
            let _ = writeln!(
                out,
                r#"{{"type":"qcn_cp","q_eq_bits":{},"w":{},"sample_every":{}}}"#,
                fmt_num(cp.q_eq_bits),
                fmt_num(cp.w),
                cp.sample_every,
            );
            let _ = writeln!(
                out,
                r#"{{"type":"qcn_rp","gd":{},"bc_limit_bits":{},"fr_cycles":{},"r_ai":{},"r_hai":{},"r_min":{},"r_max":{}}}"#,
                fmt_num(rp.gd),
                fmt_num(rp.bc_limit_bits),
                rp.fr_cycles,
                fmt_num(rp.r_ai),
                fmt_num(rp.r_hai),
                fmt_num(rp.r_min),
                fmt_num(rp.r_max),
            );
        }
        Control::None => {}
    }
    for flow in &cfg.flows {
        let _ = write!(
            out,
            r#"{{"type":"flow","start_ns":{},"initial_rate":{},"has_stop":{},"has_volume":{}"#,
            flow.start.as_nanos(),
            fmt_num(flow.initial_rate),
            flow.stop.is_some(),
            flow.volume_bits.is_some(),
        );
        if let Some(t) = flow.stop {
            let _ = write!(out, r#","stop_ns":{}"#, t.as_nanos());
        }
        if let Some(v) = flow.volume_bits {
            let _ = write!(out, r#","volume_bits":{}"#, fmt_num(v));
        }
        out.push_str("}\n");
    }
    let fl = &cfg.faults;
    let mut line = String::from(r#"{"type":"fault_plan""#);
    put_split_u64(&mut line, "seed", fl.seed);
    let _ = write!(
        line,
        r#","feedback_loss":{},"feedback_corrupt":{},"feedback_extra_delay_ns":{},"feedback_reorder":{},"reorder_window_ns":{},"data_loss":{},"data_burst_len":{},"link_flap_period_ns":{},"link_flap_down_ns":{},"pause_storm":{},"pause_storm_factor":{}"#,
        fmt_num(fl.feedback_loss),
        fmt_num(fl.feedback_corrupt),
        fl.feedback_extra_delay.as_nanos(),
        fmt_num(fl.feedback_reorder),
        fl.reorder_window.as_nanos(),
        fmt_num(fl.data_loss),
        fl.data_burst_len,
        fl.link_flap_period.as_nanos(),
        fl.link_flap_down.as_nanos(),
        fmt_num(fl.pause_storm),
        fmt_num(fl.pause_storm_factor),
    );
    line.push('}');
    out.push_str(&line);
    out.push('\n');
}

/// Decodes a [`SimConfig`] block written by [`encode_sim_config`],
/// consuming exactly its lines, and verifies the embedded digest
/// against the decoded config.
///
/// # Errors
///
/// Fails on truncation, malformed records, or a digest mismatch
/// (edited or version-skewed config block).
pub fn decode_sim_config<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
) -> Result<SimConfig, CheckpointError> {
    let head = next_record(lines, "`sim_config` record")?;
    expect_type(&head, "sim_config")?;
    let digest = get_u64(&head, "digest")?;
    let scheduler = match get_str(&head, "scheduler")? {
        "wheel" => Scheduler::Wheel,
        "heap" => Scheduler::Heap,
        other => {
            return Err(CheckpointError::Format(format!("unknown scheduler `{other}`")));
        }
    };
    let control = match get_str(&head, "control")? {
        "bcn" => {
            let cp = next_record(lines, "`bcn_cp` record")?;
            expect_type(&cp, "bcn_cp")?;
            let fb_quant = if get_bool(&cp, "has_fb_quant")? {
                Some(FbQuant {
                    bits: get_u32(&cp, "fb_bits")?,
                    range_bits: get_f64(&cp, "fb_range_bits")?,
                })
            } else {
                None
            };
            let cp = CpConfig {
                cpid: CpId(get_split_u64(&cp, "cpid")?),
                q0_bits: get_f64(&cp, "q0_bits")?,
                qsc_bits: get_f64(&cp, "qsc_bits")?,
                w: get_f64(&cp, "w")?,
                sample_every: get_u64(&cp, "sample_every")?,
                fb_quant,
                gate_positive: get_bool(&cp, "gate_positive")?,
            };
            let rp = next_record(lines, "`bcn_rp` record")?;
            expect_type(&rp, "bcn_rp")?;
            let rp = RpConfig {
                gi: get_f64(&rp, "gi")?,
                gd: get_f64(&rp, "gd")?,
                ru: get_f64(&rp, "ru")?,
                gain_scale: get_f64(&rp, "gain_scale")?,
                r_min: get_f64(&rp, "r_min")?,
                r_max: get_f64(&rp, "r_max")?,
            };
            Control::Bcn { cp, rp }
        }
        "qcn" => {
            let cp = next_record(lines, "`qcn_cp` record")?;
            expect_type(&cp, "qcn_cp")?;
            let cp = QcnCpConfig {
                q_eq_bits: get_f64(&cp, "q_eq_bits")?,
                w: get_f64(&cp, "w")?,
                sample_every: get_u64(&cp, "sample_every")?,
            };
            let rp = next_record(lines, "`qcn_rp` record")?;
            expect_type(&rp, "qcn_rp")?;
            let rp = QcnRpConfig {
                gd: get_f64(&rp, "gd")?,
                bc_limit_bits: get_f64(&rp, "bc_limit_bits")?,
                fr_cycles: get_u32(&rp, "fr_cycles")?,
                r_ai: get_f64(&rp, "r_ai")?,
                r_hai: get_f64(&rp, "r_hai")?,
                r_min: get_f64(&rp, "r_min")?,
                r_max: get_f64(&rp, "r_max")?,
            };
            Control::Qcn { cp, rp }
        }
        "none" => Control::None,
        other => {
            return Err(CheckpointError::Format(format!("unknown control `{other}`")));
        }
    };
    let n_flows = get_u64(&head, "flows")? as usize;
    let mut flows = Vec::with_capacity(n_flows);
    for _ in 0..n_flows {
        let f = next_record(lines, "`flow` record")?;
        expect_type(&f, "flow")?;
        flows.push(FlowSpec {
            start: Time::from_nanos(get_u64(&f, "start_ns")?),
            stop: if get_bool(&f, "has_stop")? {
                Some(Time::from_nanos(get_u64(&f, "stop_ns")?))
            } else {
                None
            },
            initial_rate: get_f64(&f, "initial_rate")?,
            volume_bits: if get_bool(&f, "has_volume")? {
                Some(get_f64(&f, "volume_bits")?)
            } else {
                None
            },
        });
    }
    let fp = next_record(lines, "`fault_plan` record")?;
    expect_type(&fp, "fault_plan")?;
    let faults = FaultConfig {
        seed: get_split_u64(&fp, "seed")?,
        feedback_loss: get_f64(&fp, "feedback_loss")?,
        feedback_corrupt: get_f64(&fp, "feedback_corrupt")?,
        feedback_extra_delay: Duration::from_nanos(get_u64(&fp, "feedback_extra_delay_ns")?),
        feedback_reorder: get_f64(&fp, "feedback_reorder")?,
        reorder_window: Duration::from_nanos(get_u64(&fp, "reorder_window_ns")?),
        data_loss: get_f64(&fp, "data_loss")?,
        data_burst_len: get_u64(&fp, "data_burst_len")?,
        link_flap_period: Duration::from_nanos(get_u64(&fp, "link_flap_period_ns")?),
        link_flap_down: Duration::from_nanos(get_u64(&fp, "link_flap_down_ns")?),
        pause_storm: get_f64(&fp, "pause_storm")?,
        pause_storm_factor: get_f64(&fp, "pause_storm_factor")?,
    };
    let cfg = SimConfig {
        capacity: get_f64(&head, "capacity")?,
        buffer_bits: get_f64(&head, "buffer_bits")?,
        frame_bits: get_f64(&head, "frame_bits")?,
        prop_delay: Duration::from_nanos(get_u64(&head, "prop_delay_ns")?),
        flows,
        control,
        t_end: Time::from_nanos(get_u64(&head, "t_end_ns")?),
        record_interval: Duration::from_nanos(get_u64(&head, "record_interval_ns")?),
        pause_hold: Duration::from_nanos(get_u64(&head, "pause_hold_ns")?),
        faults,
        scheduler,
    };
    let actual = sim_config_digest(&cfg);
    if actual != digest {
        return Err(CheckpointError::Format(format!(
            "sim_config digest mismatch (recorded {digest:#x}, decoded {actual:#x}): \
             the config block was edited or written by an incompatible version"
        )));
    }
    Ok(cfg)
}

// ---------------------------------------------------------------------
// Seed-outcome codec
// ---------------------------------------------------------------------

/// Appends the record block for one seed's [`SeedOutcome`] — the shard
/// payload of a checkpoint. Completed reports serialise every
/// [`SimMetrics`] field plus the telemetry shard through the bit-exact
/// snapshot codec, so a decoded outcome merges into an aggregate
/// byte-identically to the original.
pub fn encode_seed_outcome(seed: u64, outcome: &SeedOutcome, out: &mut String) {
    let (kind, retries, cause, events, tel) = match outcome {
        SeedOutcome::Completed(report) => {
            ("completed", 0, String::new(), 0, report.telemetry.as_ref())
        }
        SeedOutcome::Failed { cause, retries, telemetry } => {
            ("failed", *retries, cause.clone(), 0, telemetry.as_deref())
        }
        SeedOutcome::TimedOut { events, telemetry } => {
            ("timed_out", 0, String::new(), *events, telemetry.as_deref())
        }
    };
    let mut line = String::from(r#"{"type":"seed""#);
    put_split_u64(&mut line, "seed", seed);
    let _ = write!(
        line,
        r#","outcome":"{kind}","retries":{retries},"events":{events},"has_telemetry":{},"cause":"{cause}""#,
        tel.is_some(),
    );
    line.push('}');
    out.push_str(&line);
    out.push('\n');
    if let SeedOutcome::Completed(report) = outcome {
        let m = &report.metrics;
        let _ = writeln!(
            out,
            r#"{{"type":"sim_counters","delivered_frames":{},"dropped_frames":{},"feedback_messages":{},"pause_events":{},"delivered_bits":{},"sources":{}}}"#,
            m.delivered_frames,
            m.dropped_frames,
            m.feedback_messages,
            m.pause_events,
            fmt_num(m.delivered_bits),
            m.per_source_rate.len(),
        );
        put_fault_counts(out, &m.faults);
        put_samples(out, "final_rates", &report.final_rates);
        put_samples(out, "per_source_bits", &m.per_source_bits);
        put_samples(out, "queueing_delay", m.queueing_delay.values());
        put_series(out, "queue", None, &m.queue);
        put_series(out, "aggregate_rate", None, &m.aggregate_rate);
        for (i, s) in m.per_source_rate.iter().enumerate() {
            put_series(out, "rate", Some(i), s);
        }
    }
    if let Some(t) = tel {
        out.push_str(&snapshot_to_jsonl(t));
    }
}

fn put_samples(out: &mut String, name: &str, vals: &[f64]) {
    let _ = writeln!(out, r#"{{"type":"samples","name":"{name}","values":"{}"}}"#, pack_f64s(vals));
}

fn put_fault_counts(out: &mut String, f: &FaultCounts) {
    let _ = writeln!(
        out,
        r#"{{"type":"fault_counts","feedback_dropped":{},"feedback_corrupted":{},"feedback_corrupt_lost":{},"feedback_delayed":{},"feedback_reordered":{},"data_frames_lost":{},"link_flap_deferrals":{},"pause_storms":{}}}"#,
        f.feedback_dropped,
        f.feedback_corrupted,
        f.feedback_corrupt_lost,
        f.feedback_delayed,
        f.feedback_reordered,
        f.data_frames_lost,
        f.link_flap_deferrals,
        f.pause_storms,
    );
}

fn take_fault_counts<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
) -> Result<FaultCounts, CheckpointError> {
    let fc = next_record(lines, "`fault_counts` record")?;
    expect_type(&fc, "fault_counts")?;
    Ok(FaultCounts {
        feedback_dropped: get_u64(&fc, "feedback_dropped")?,
        feedback_corrupted: get_u64(&fc, "feedback_corrupted")?,
        feedback_corrupt_lost: get_u64(&fc, "feedback_corrupt_lost")?,
        feedback_delayed: get_u64(&fc, "feedback_delayed")?,
        feedback_reordered: get_u64(&fc, "feedback_reordered")?,
        data_frames_lost: get_u64(&fc, "data_frames_lost")?,
        link_flap_deferrals: get_u64(&fc, "link_flap_deferrals")?,
        pause_storms: get_u64(&fc, "pause_storms")?,
    })
}

fn put_series(out: &mut String, name: &str, entity: Option<usize>, s: &crate::metrics::TimeSeries) {
    let mut line = format!(r#"{{"type":"sim_series","name":"{name}""#);
    if let Some(e) = entity {
        let _ = write!(line, r#","entity":{e}"#);
    }
    let _ =
        write!(line, r#","times":"{}","values":"{}""#, pack_f64s(s.times()), pack_f64s(s.values()));
    line.push('}');
    out.push_str(&line);
    out.push('\n');
}

/// Decodes one seed's outcome block written by [`encode_seed_outcome`],
/// consuming exactly its lines.
///
/// # Errors
///
/// Fails on truncation or malformed records; a resuming batch treats
/// that as "seed not done" and re-runs it.
pub fn decode_seed_outcome<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
) -> Result<(u64, SeedOutcome), CheckpointError> {
    let head = next_record(lines, "`seed` record")?;
    expect_type(&head, "seed")?;
    let seed = get_split_u64(&head, "seed")?;
    let kind = get_str(&head, "outcome")?.to_string();
    let retries = get_u32(&head, "retries")?;
    let events = get_u64(&head, "events")?;
    let has_tel = get_bool(&head, "has_telemetry")?;
    let cause = get_str(&head, "cause")?.to_string();
    let outcome = match kind.as_str() {
        "completed" => {
            let c = next_record(lines, "`sim_counters` record")?;
            expect_type(&c, "sim_counters")?;
            let sources = get_u64(&c, "sources")? as usize;
            let faults = take_fault_counts(lines)?;
            let final_rates = take_samples(lines, "final_rates")?;
            let per_source_bits = take_samples(lines, "per_source_bits")?;
            let delay_vals = take_samples(lines, "queueing_delay")?;
            let queue = take_series(lines, "queue")?;
            let aggregate_rate = take_series(lines, "aggregate_rate")?;
            let mut per_source_rate = Vec::with_capacity(sources);
            for _ in 0..sources {
                per_source_rate.push(take_series(lines, "rate")?);
            }
            let mut queueing_delay = crate::metrics::SampleSet::new();
            for v in delay_vals {
                queueing_delay.push(v);
            }
            let metrics = SimMetrics {
                queue,
                aggregate_rate,
                delivered_frames: get_u64(&c, "delivered_frames")?,
                dropped_frames: get_u64(&c, "dropped_frames")?,
                feedback_messages: get_u64(&c, "feedback_messages")?,
                pause_events: get_u64(&c, "pause_events")?,
                per_source_bits,
                delivered_bits: get_f64(&c, "delivered_bits")?,
                queueing_delay,
                per_source_rate,
                faults,
            };
            let telemetry = if has_tel { Some(snapshot_from_jsonl(lines)?) } else { None };
            SeedOutcome::Completed(Box::new(SimReport { metrics, final_rates, telemetry }))
        }
        "failed" => {
            let telemetry =
                if has_tel { Some(Box::new(snapshot_from_jsonl(lines)?)) } else { None };
            SeedOutcome::Failed { cause, retries, telemetry }
        }
        "timed_out" => {
            let telemetry =
                if has_tel { Some(Box::new(snapshot_from_jsonl(lines)?)) } else { None };
            SeedOutcome::TimedOut { events, telemetry }
        }
        other => {
            return Err(CheckpointError::Format(format!("unknown seed outcome `{other}`")));
        }
    };
    Ok((seed, outcome))
}

fn take_samples<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
    name: &str,
) -> Result<Vec<f64>, CheckpointError> {
    let r = next_record(lines, "`samples` record")?;
    expect_type(&r, "samples")?;
    let found = get_str(&r, "name")?;
    if found != name {
        return Err(CheckpointError::Format(format!("expected samples `{name}`, found `{found}`")));
    }
    unpack_f64s(get_str(&r, "values")?, name)
}

fn take_series<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
    name: &str,
) -> Result<crate::metrics::TimeSeries, CheckpointError> {
    let r = next_record(lines, "`sim_series` record")?;
    expect_type(&r, "sim_series")?;
    let found = get_str(&r, "name")?;
    if found != name {
        return Err(CheckpointError::Format(format!("expected series `{name}`, found `{found}`")));
    }
    let times = unpack_f64s(get_str(&r, "times")?, name)?;
    let values = unpack_f64s(get_str(&r, "values")?, name)?;
    if times.len() != values.len() {
        return Err(CheckpointError::Format(format!(
            "series `{name}`: {} times vs {} values",
            times.len(),
            values.len()
        )));
    }
    let mut s = crate::metrics::TimeSeries::new();
    for (t, v) in times.into_iter().zip(values) {
        s.push_secs(t, v);
    }
    Ok(s)
}

// ---------------------------------------------------------------------
// Net seed-outcome codec
// ---------------------------------------------------------------------

/// Appends the record block for one network seed's [`NetSeedOutcome`]
/// — the shard payload of a [`NetBatchCheckpoint`]. Completed reports
/// carry every per-flow statistic, the per-switch queue series, the
/// per-link PAUSE counts, fault tallies, and the telemetry shard, so a
/// decoded outcome merges back byte-identically.
pub fn encode_net_seed_outcome(seed: u64, outcome: &NetSeedOutcome, out: &mut String) {
    let (kind, cause, events, tel) = match outcome {
        NetSeedOutcome::Completed(report) => {
            ("completed", String::new(), 0, report.telemetry.as_ref())
        }
        NetSeedOutcome::Failed { cause, telemetry } => {
            ("failed", cause.clone(), 0, telemetry.as_deref())
        }
        NetSeedOutcome::TimedOut { events, telemetry } => {
            ("timed_out", String::new(), *events, telemetry.as_deref())
        }
    };
    let mut line = String::from(r#"{"type":"net_seed""#);
    put_split_u64(&mut line, "seed", seed);
    let _ = write!(
        line,
        r#","outcome":"{kind}","events":{events},"has_telemetry":{},"cause":"{cause}""#,
        tel.is_some(),
    );
    line.push('}');
    out.push_str(&line);
    out.push('\n');
    if let NetSeedOutcome::Completed(report) = outcome {
        let _ = writeln!(
            out,
            r#"{{"type":"net_counters","feedback_messages":{},"flows":{},"switches":{},"pause_counts":"{}","dropped_frames":"{}"}}"#,
            report.feedback_messages,
            report.flows.len(),
            report.switch_queues.len(),
            pack_u64s(&report.pause_counts),
            pack_u64s(&report.flows.iter().map(|f| f.dropped_frames).collect::<Vec<_>>()),
        );
        put_fault_counts(out, &report.faults);
        let delivered: Vec<f64> = report.flows.iter().map(|f| f.delivered_bits).collect();
        let rates: Vec<f64> = report.flows.iter().map(|f| f.final_rate).collect();
        put_samples(out, "delivered_bits", &delivered);
        put_samples(out, "final_rate", &rates);
        for (i, s) in report.switch_queues.iter().enumerate() {
            put_series(out, "switch_queue", Some(i), s);
        }
    }
    if let Some(t) = tel {
        out.push_str(&snapshot_to_jsonl(t));
    }
}

/// Decodes one network seed's outcome block written by
/// [`encode_net_seed_outcome`], consuming exactly its lines.
///
/// # Errors
///
/// Fails on truncation or malformed records; a resuming batch treats
/// that as "seed not done" and re-runs it.
pub fn decode_net_seed_outcome<'a, I: Iterator<Item = &'a str>>(
    lines: &mut I,
) -> Result<(u64, NetSeedOutcome), CheckpointError> {
    let head = next_record(lines, "`net_seed` record")?;
    expect_type(&head, "net_seed")?;
    let seed = get_split_u64(&head, "seed")?;
    let kind = get_str(&head, "outcome")?.to_string();
    let events = get_u64(&head, "events")?;
    let has_tel = get_bool(&head, "has_telemetry")?;
    let cause = get_str(&head, "cause")?.to_string();
    let outcome = match kind.as_str() {
        "completed" => {
            let c = next_record(lines, "`net_counters` record")?;
            expect_type(&c, "net_counters")?;
            let n_flows = get_u64(&c, "flows")? as usize;
            let n_switches = get_u64(&c, "switches")? as usize;
            let pause_counts = unpack_u64s(get_str(&c, "pause_counts")?, "pause_counts")?;
            let dropped = unpack_u64s(get_str(&c, "dropped_frames")?, "dropped_frames")?;
            let faults = take_fault_counts(lines)?;
            let delivered = take_samples(lines, "delivered_bits")?;
            let rates = take_samples(lines, "final_rate")?;
            if delivered.len() != n_flows || rates.len() != n_flows || dropped.len() != n_flows {
                return Err(CheckpointError::Format(format!(
                    "net shard: {n_flows} flows vs {} delivered / {} rates / {} drop counts",
                    delivered.len(),
                    rates.len(),
                    dropped.len()
                )));
            }
            let flows = delivered
                .into_iter()
                .zip(rates)
                .zip(dropped)
                .map(|((delivered_bits, final_rate), dropped_frames)| FlowStats {
                    delivered_bits,
                    dropped_frames,
                    final_rate,
                })
                .collect();
            let mut switch_queues = Vec::with_capacity(n_switches);
            for _ in 0..n_switches {
                switch_queues.push(take_series(lines, "switch_queue")?);
            }
            let telemetry = if has_tel { Some(snapshot_from_jsonl(lines)?) } else { None };
            NetSeedOutcome::Completed(Box::new(NetReport {
                flows,
                switch_queues,
                pause_counts,
                feedback_messages: get_u64(&c, "feedback_messages")?,
                faults,
                telemetry,
            }))
        }
        "failed" => {
            let telemetry =
                if has_tel { Some(Box::new(snapshot_from_jsonl(lines)?)) } else { None };
            NetSeedOutcome::Failed { cause, telemetry }
        }
        "timed_out" => {
            let telemetry =
                if has_tel { Some(Box::new(snapshot_from_jsonl(lines)?)) } else { None };
            NetSeedOutcome::TimedOut { events, telemetry }
        }
        other => {
            return Err(CheckpointError::Format(format!("unknown net seed outcome `{other}`")));
        }
    };
    Ok((seed, outcome))
}

// ---------------------------------------------------------------------
// The checkpoint store
// ---------------------------------------------------------------------

/// A batch checkpoint directory: per-seed outcome shards plus an
/// append-only, fsynced manifest acknowledging each finished seed.
/// See the module docs for the crash-consistency argument.
#[derive(Debug)]
pub struct BatchCheckpoint {
    dir: PathBuf,
    manifest: Mutex<fs::File>,
    restored: Mutex<BTreeMap<u64, SeedOutcome>>,
}

impl BatchCheckpoint {
    /// Starts a fresh checkpoint in `dir` (created if needed).
    ///
    /// # Errors
    ///
    /// Fails if `dir` already holds a manifest (refuse to silently
    /// clobber a previous run — resume it or pick a fresh directory) or
    /// on I/O errors.
    pub fn create(dir: &Path, cfg: &BatchConfig) -> Result<Self, CheckpointError> {
        if dir.join(MANIFEST_FILE).exists() {
            return Err(CheckpointError::Format(format!(
                "{} already contains a manifest; resume it or use a fresh directory",
                dir.display()
            )));
        }
        Self::open(dir, cfg)
    }

    /// Opens `dir` for a (possibly resumed) run: if a manifest exists,
    /// verifies its config digest and loads every acknowledged,
    /// readable shard; otherwise starts fresh. Unreadable or truncated
    /// shards are skipped — their seeds simply re-run.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a malformed manifest header, or
    /// [`CheckpointError::ConfigMismatch`] when the directory belongs
    /// to a different batch configuration.
    pub fn resume(dir: &Path, cfg: &BatchConfig) -> Result<Self, CheckpointError> {
        Self::open(dir, cfg)
    }

    fn open(dir: &Path, cfg: &BatchConfig) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir)?;
        let digest = batch_config_digest(cfg);
        let path = dir.join(MANIFEST_FILE);
        let mut restored = BTreeMap::new();
        if path.exists() {
            let text = fs::read_to_string(&path)?;
            for seed in parse_manifest(&text, digest)? {
                if !cfg.seeds.contains(&seed) {
                    continue;
                }
                if let Some(outcome) = load_shard(dir, seed) {
                    restored.insert(seed, outcome);
                }
            }
        } else {
            let mut text = schema_header();
            text.push('\n');
            let mut line = String::from(r#"{"type":"batch_manifest""#);
            let _ = write!(line, r#","digest":{digest},"seeds":{}"#, cfg.seeds.len());
            line.push('}');
            text.push_str(&line);
            text.push('\n');
            write_atomic(&path, &text)?;
        }
        let manifest = fs::OpenOptions::new().append(true).open(&path)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest: Mutex::new(manifest),
            restored: Mutex::new(restored),
        })
    }

    /// Seeds whose outcomes were restored from disk, ascending.
    #[must_use]
    pub fn restored_seeds(&self) -> Vec<u64> {
        self.restored.lock().expect("restored lock").keys().copied().collect()
    }

    /// Hands the restored outcome for `seed` to the runner (once).
    pub(crate) fn take_restored(&self, seed: u64) -> Option<SeedOutcome> {
        self.restored.lock().expect("restored lock").remove(&seed)
    }

    /// Persists one finished seed: writes its shard atomically, then
    /// appends and fsyncs a manifest acknowledgement. Only after both
    /// steps will a resume skip the seed, so a crash at any point in
    /// between re-runs it rather than trusting a torn shard.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; the batch runner surfaces the first one and
    /// aborts rather than silently running uncheckpointed.
    pub fn record(&self, seed: u64, outcome: &SeedOutcome) -> Result<(), CheckpointError> {
        let mut text = schema_header();
        text.push('\n');
        encode_seed_outcome(seed, outcome, &mut text);
        write_atomic(&self.dir.join(shard_name(seed)), &text)?;
        let mut line = String::from(r#"{"type":"done""#);
        put_split_u64(&mut line, "seed", seed);
        line.push_str("}\n");
        let mut f = self.manifest.lock().expect("manifest lock");
        f.write_all(line.as_bytes())?;
        f.sync_data()?;
        Ok(())
    }
}

fn shard_name(seed: u64) -> String {
    format!("seed-{seed}.jsonl")
}

/// Parses the manifest: schema header, `batch_manifest` record (digest
/// checked), then `done` acknowledgements. Unparseable `done` lines —
/// a torn trailing write from a killed run — are skipped, which only
/// ever errs toward re-running a seed.
fn parse_manifest(text: &str, expected: u64) -> Result<Vec<u64>, CheckpointError> {
    let mut lines = text.lines();
    let header =
        lines.next().ok_or_else(|| CheckpointError::Format("empty manifest".to_string()))?;
    check_schema_header(header)?;
    let head = next_record(&mut lines, "`batch_manifest` record")?;
    expect_type(&head, "batch_manifest")?;
    let found = get_u64(&head, "digest")?;
    if found != expected {
        return Err(CheckpointError::ConfigMismatch { expected, found });
    }
    let mut done = Vec::new();
    for line in lines {
        let Ok(fields) = parse_scalars(line) else { continue };
        if expect_type(&fields, "done").is_err() {
            continue;
        }
        if let Ok(seed) = get_split_u64(&fields, "seed") {
            done.push(seed);
        }
    }
    Ok(done)
}

/// Loads one acknowledged shard; any failure (missing file, torn or
/// version-skewed content, seed mismatch) yields `None` so the seed
/// re-runs.
fn load_shard(dir: &Path, seed: u64) -> Option<SeedOutcome> {
    let text = fs::read_to_string(dir.join(shard_name(seed))).ok()?;
    let mut lines = text.lines();
    check_schema_header(lines.next()?).ok()?;
    let (found, outcome) = decode_seed_outcome(&mut lines).ok()?;
    (found == seed).then_some(outcome)
}

/// The [`BatchCheckpoint`] counterpart for network batches
/// ([`crate::batch::run_net_batch_checkpointed`]): identical shard +
/// manifest discipline and the same crash-consistency argument, keyed
/// by [`net_batch_config_digest`] so a sim-batch directory (or any
/// other configuration) is rejected on resume.
#[derive(Debug)]
pub struct NetBatchCheckpoint {
    dir: PathBuf,
    manifest: Mutex<fs::File>,
    restored: Mutex<BTreeMap<u64, NetSeedOutcome>>,
}

impl NetBatchCheckpoint {
    /// Starts a fresh checkpoint in `dir` (created if needed).
    ///
    /// # Errors
    ///
    /// Fails if `dir` already holds a manifest or on I/O errors.
    pub fn create(dir: &Path, cfg: &NetBatchConfig) -> Result<Self, CheckpointError> {
        if dir.join(MANIFEST_FILE).exists() {
            return Err(CheckpointError::Format(format!(
                "{} already contains a manifest; resume it or use a fresh directory",
                dir.display()
            )));
        }
        Self::open(dir, cfg)
    }

    /// Opens `dir` for a (possibly resumed) run, restoring every
    /// acknowledged, readable shard; unreadable shards simply re-run.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a malformed manifest header, or
    /// [`CheckpointError::ConfigMismatch`].
    pub fn resume(dir: &Path, cfg: &NetBatchConfig) -> Result<Self, CheckpointError> {
        Self::open(dir, cfg)
    }

    fn open(dir: &Path, cfg: &NetBatchConfig) -> Result<Self, CheckpointError> {
        fs::create_dir_all(dir)?;
        let digest = net_batch_config_digest(cfg);
        let path = dir.join(MANIFEST_FILE);
        let mut restored = BTreeMap::new();
        if path.exists() {
            let text = fs::read_to_string(&path)?;
            for seed in parse_manifest(&text, digest)? {
                if !cfg.seeds.contains(&seed) {
                    continue;
                }
                if let Some(outcome) = load_net_shard(dir, seed) {
                    restored.insert(seed, outcome);
                }
            }
        } else {
            let mut text = schema_header();
            text.push('\n');
            let mut line = String::from(r#"{"type":"batch_manifest""#);
            let _ = write!(line, r#","digest":{digest},"seeds":{}"#, cfg.seeds.len());
            line.push('}');
            text.push_str(&line);
            text.push('\n');
            write_atomic(&path, &text)?;
        }
        let manifest = fs::OpenOptions::new().append(true).open(&path)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            manifest: Mutex::new(manifest),
            restored: Mutex::new(restored),
        })
    }

    /// Seeds whose outcomes were restored from disk, ascending.
    #[must_use]
    pub fn restored_seeds(&self) -> Vec<u64> {
        self.restored.lock().expect("restored lock").keys().copied().collect()
    }

    /// Hands the restored outcome for `seed` to the runner (once).
    pub(crate) fn take_restored(&self, seed: u64) -> Option<NetSeedOutcome> {
        self.restored.lock().expect("restored lock").remove(&seed)
    }

    /// Persists one finished seed: atomic shard write, then an fsynced
    /// manifest acknowledgement (see [`BatchCheckpoint::record`]).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; the batch runner aborts on the first one.
    pub fn record(&self, seed: u64, outcome: &NetSeedOutcome) -> Result<(), CheckpointError> {
        let mut text = schema_header();
        text.push('\n');
        encode_net_seed_outcome(seed, outcome, &mut text);
        write_atomic(&self.dir.join(shard_name(seed)), &text)?;
        let mut line = String::from(r#"{"type":"done""#);
        put_split_u64(&mut line, "seed", seed);
        line.push_str("}\n");
        let mut f = self.manifest.lock().expect("manifest lock");
        f.write_all(line.as_bytes())?;
        f.sync_data()?;
        Ok(())
    }
}

/// Loads one acknowledged network shard; any failure yields `None` so
/// the seed re-runs.
fn load_net_shard(dir: &Path, seed: u64) -> Option<NetSeedOutcome> {
    let text = fs::read_to_string(dir.join(shard_name(seed))).ok()?;
    let mut lines = text.lines();
    check_schema_header(lines.next()?).ok()?;
    let (found, outcome) = decode_net_seed_outcome(&mut lines).ok()?;
    (found == seed).then_some(outcome)
}

/// Writes `contents` to `path` atomically: temp file, fsync, rename,
/// directory fsync. Readers never observe a partial file.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(d) = fs::File::open(parent) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Postmortem replay specs
// ---------------------------------------------------------------------

/// Everything needed to re-run a quarantined seed exactly: parsed from
/// a self-describing postmortem dump by [`replay_spec_from_postmortem`]
/// and executed by [`crate::batch::replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySpec {
    /// The quarantined seed.
    pub seed: u64,
    /// The recorded failure cause the re-run must reproduce.
    pub cause: String,
    /// The fully seeded configuration (jitters and fault plan applied).
    pub config: SimConfig,
    /// The intentional-panic trigger active during the original run.
    pub panic_after: Option<u64>,
    /// The watchdog event budget active during the original run.
    pub max_events: Option<u64>,
}

/// Appends the replay-context records a postmortem dump embeds: a
/// `replay` record (seed + panic/watchdog triggers) followed by the
/// seeded config block.
pub fn encode_replay_context(
    seed: u64,
    panic_after: Option<u64>,
    max_events: Option<u64>,
    config: &SimConfig,
    out: &mut String,
) {
    let mut line = String::from(r#"{"type":"replay""#);
    put_split_u64(&mut line, "seed", seed);
    let _ = write!(
        line,
        r#","has_panic_after":{},"panic_after":{},"has_max_events":{},"max_events":{}"#,
        panic_after.is_some(),
        panic_after.unwrap_or(0),
        max_events.is_some(),
        max_events.unwrap_or(0),
    );
    line.push_str("}\n");
    out.push_str(&line);
    encode_sim_config(config, out);
}

/// Reconstructs a [`ReplaySpec`] from a postmortem dump written by
/// `dcebcn batch` (schema v2 with embedded replay context).
///
/// # Errors
///
/// Fails when `text` is not a postmortem dump, lacks the embedded
/// config (pre-recovery dumps), or its config block fails to decode.
pub fn replay_spec_from_postmortem(text: &str) -> Result<ReplaySpec, CheckpointError> {
    let mut lines = text.lines();
    let header =
        lines.next().ok_or_else(|| CheckpointError::Format("empty postmortem file".to_string()))?;
    check_schema_header(header)?;
    let all: Vec<&str> = lines.collect();
    let mut cause = None;
    let mut replay = None;
    let mut config = None;
    let mut idx = 0;
    while idx < all.len() {
        let line = all[idx];
        let Ok(fields) = parse_scalars(line) else {
            idx += 1;
            continue;
        };
        match field(&fields, "type").and_then(|t| Ok(t.as_str("type")?.to_string())) {
            Ok(t) if t == "postmortem" => {
                cause = Some(get_str(&fields, "cause")?.to_string());
                idx += 1;
            }
            Ok(t) if t == "replay" => {
                let seed = get_split_u64(&fields, "seed")?;
                let panic_after =
                    get_bool(&fields, "has_panic_after")?.then(|| get_u64(&fields, "panic_after"));
                let max_events =
                    get_bool(&fields, "has_max_events")?.then(|| get_u64(&fields, "max_events"));
                replay = Some((seed, panic_after.transpose()?, max_events.transpose()?));
                idx += 1;
            }
            Ok(t) if t == "sim_config" => {
                let mut rest = all[idx..].iter().copied();
                config = Some(decode_sim_config(&mut rest)?);
                idx = all.len() - rest.count();
            }
            _ => idx += 1,
        }
    }
    let cause = cause.ok_or_else(|| {
        CheckpointError::Format("no `postmortem` record: not a postmortem dump".to_string())
    })?;
    let (seed, panic_after, max_events) = replay.ok_or_else(|| {
        CheckpointError::Format(
            "no `replay` record: dump predates the self-describing postmortem format".to_string(),
        )
    })?;
    let config = config.ok_or_else(|| {
        CheckpointError::Format(
            "no `sim_config` block: dump predates the self-describing postmortem format"
                .to_string(),
        )
    })?;
    Ok(ReplaySpec { seed, cause, config, panic_after, max_events })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::run_batch;
    use telemetry::TelemetryLevel;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dcesim-ckpt-{}-{tag}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        dir
    }

    fn faulty_batch(n: u64) -> BatchConfig {
        let mut base = SimConfig::fluid_validation_default();
        base.t_end = Time::from_secs(0.02);
        base.faults.seed = 7;
        base.faults.feedback_loss = 0.2;
        BatchConfig { level: TelemetryLevel::Full, ..BatchConfig::quick(base, n) }
    }

    #[test]
    fn sim_config_codec_round_trips_bcn_and_qcn() {
        let mut bcn = crate::batch::seeded_config(&faulty_batch(2), 1);
        bcn.flows[0].stop = Some(Time::from_secs(0.015));
        bcn.flows[1].volume_bits = Some(1.5e6);
        if let Control::Bcn { cp, .. } = &mut bcn.control {
            cp.fb_quant = Some(FbQuant { bits: 6, range_bits: 2.0e6 });
        }
        let mut qcn = bcn.clone();
        qcn.control = Control::Qcn {
            cp: QcnCpConfig { q_eq_bits: 1.0e6, w: 2.0, sample_every: 50 },
            rp: QcnRpConfig {
                gd: 1.0 / 128.0,
                bc_limit_bits: 1.2e6,
                fr_cycles: 5,
                r_ai: 5.0e6,
                r_hai: 5.0e7,
                r_min: 1.0e4,
                r_max: 1.0e9,
            },
        };
        qcn.scheduler = Scheduler::Heap;
        let mut none = bcn.clone();
        none.control = Control::None;
        for cfg in [bcn, qcn, none] {
            let mut text = String::new();
            encode_sim_config(&cfg, &mut text);
            let decoded = decode_sim_config(&mut text.lines()).expect("decode");
            assert_eq!(decoded, cfg);
        }
    }

    #[test]
    fn sim_config_decode_rejects_tampering() {
        let cfg = crate::batch::seeded_config(&faulty_batch(1), 0);
        let mut text = String::new();
        encode_sim_config(&cfg, &mut text);
        let tampered = text.replacen("\"capacity\":1", "\"capacity\":2", 1);
        assert_ne!(tampered, text, "expected the capacity field to be editable");
        let err = decode_sim_config(&mut tampered.lines()).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(m) if m.contains("digest mismatch")));
    }

    #[test]
    fn seed_outcomes_round_trip_byte_exactly() {
        let mut cfg = faulty_batch(3);
        cfg.panic_seeds = vec![1];
        // 400 > PANIC_AFTER_STEPS (256): seed 1 still panics, while the
        // other seeds run into the event budget and get demoted — so
        // one batch exercises all three outcome arms of the codec.
        cfg.max_events_per_seed = Some(400);
        let report = run_batch(&cfg);
        let kinds: Vec<&str> = report
            .outcomes
            .iter()
            .map(|o| match o {
                SeedOutcome::Completed(_) => "completed",
                SeedOutcome::Failed { .. } => "failed",
                SeedOutcome::TimedOut { .. } => "timed_out",
            })
            .collect();
        assert_eq!(kinds, ["timed_out", "failed", "timed_out"], "outcomes: {kinds:?}");
        let mut completed_cfg = faulty_batch(1);
        completed_cfg.max_seed_retries = 3;
        let completed = run_batch(&completed_cfg);
        assert_eq!(completed.completed().count(), 1);
        let all: Vec<(u64, &SeedOutcome)> = report
            .seeds
            .iter()
            .zip(&report.outcomes)
            .chain(completed.seeds.iter().zip(&completed.outcomes))
            .map(|(&s, o)| (s, o))
            .collect();
        for (seed, outcome) in all {
            let mut text = String::new();
            encode_seed_outcome(seed, outcome, &mut text);
            let mut lines = text.lines();
            let (dseed, decoded) = decode_seed_outcome(&mut lines).expect("decode");
            assert_eq!(dseed, seed);
            assert_eq!(lines.next(), None, "decoder must consume the whole block");
            let mut re = String::new();
            encode_seed_outcome(dseed, &decoded, &mut re);
            assert_eq!(re, text, "seed {seed} round trip not byte-exact");
        }
    }

    #[test]
    fn checkpoint_store_round_trips_and_rejects_mismatched_config() {
        let dir = scratch("store");
        let cfg = faulty_batch(2);
        let ck = BatchCheckpoint::create(&dir, &cfg).expect("create");
        let report = run_batch(&cfg);
        for (&seed, outcome) in report.seeds.iter().zip(&report.outcomes) {
            ck.record(seed, outcome).expect("record");
        }
        drop(ck);
        assert!(
            matches!(BatchCheckpoint::create(&dir, &cfg), Err(CheckpointError::Format(_))),
            "create must refuse an existing manifest"
        );
        let ck = BatchCheckpoint::resume(&dir, &cfg).expect("resume");
        assert_eq!(ck.restored_seeds(), cfg.seeds);
        drop(ck);
        let mut other = cfg.clone();
        other.rate_jitter_frac += 0.01;
        match BatchCheckpoint::resume(&dir, &other) {
            Err(CheckpointError::ConfigMismatch { expected, found }) => {
                assert_ne!(expected, found);
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_manifest_line_and_corrupt_shard_only_rerun_seeds() {
        let dir = scratch("torn");
        let cfg = faulty_batch(3);
        let ck = BatchCheckpoint::create(&dir, &cfg).expect("create");
        let report = run_batch(&cfg);
        for (&seed, outcome) in report.seeds.iter().zip(&report.outcomes) {
            ck.record(seed, outcome).expect("record");
        }
        drop(ck);
        // Corrupt seed 1's shard and tear the final manifest line the
        // way a SIGKILL mid-append would.
        fs::write(dir.join(shard_name(1)), "garbage\n").expect("corrupt shard");
        let path = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&path).expect("read manifest");
        fs::write(&path, &text[..text.len() - 3]).expect("tear manifest");
        let ck = BatchCheckpoint::resume(&dir, &cfg).expect("resume");
        assert_eq!(ck.restored_seeds(), vec![0], "seeds 1 (corrupt) and 2 (torn) must re-run");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_spec_round_trips_through_a_postmortem_dump() {
        let cfg = faulty_batch(2);
        let seeded = crate::batch::seeded_config(&cfg, 1);
        let mut text = schema_header();
        text.push('\n');
        text.push_str(r#"{"type":"postmortem","seed":1,"cause":"seed 1: intentional panic (panic_seeds)","open_spans":1,"events":4}"#);
        text.push('\n');
        encode_replay_context(1, Some(256), None, &seeded, &mut text);
        let spec = replay_spec_from_postmortem(&text).expect("parse");
        assert_eq!(spec.seed, 1);
        assert_eq!(spec.cause, "seed 1: intentional panic (panic_seeds)");
        assert_eq!(spec.config, seeded);
        assert_eq!(spec.panic_after, Some(256));
        assert_eq!(spec.max_events, None);
    }

    fn net_faulty_batch(n: u64) -> crate::batch::NetBatchConfig {
        let spec = crate::topo::TopoSpec::leaf_spine(2, 1, 3);
        let traffic = crate::topo::Traffic::Incast { senders: 3, dst: usize::MAX, load: 2.0 };
        let mut base = crate::topo::compile(&spec, &traffic, 0.004).expect("compile");
        base.faults.seed = 11;
        base.faults.feedback_loss = 0.2;
        crate::batch::NetBatchConfig {
            level: telemetry::TelemetryLevel::Summary,
            ..crate::batch::NetBatchConfig::quick(base, n)
        }
    }

    #[test]
    fn net_seed_outcomes_round_trip_byte_exactly() {
        let mut cfg = net_faulty_batch(3);
        cfg.panic_seeds = vec![1];
        cfg.max_events_per_seed = Some(400);
        let report = crate::batch::run_net_batch(&cfg);
        let kinds: Vec<&str> = report
            .outcomes
            .iter()
            .map(|o| match o {
                crate::batch::NetSeedOutcome::Completed(_) => "completed",
                crate::batch::NetSeedOutcome::Failed { .. } => "failed",
                crate::batch::NetSeedOutcome::TimedOut { .. } => "timed_out",
            })
            .collect();
        assert_eq!(kinds, ["timed_out", "failed", "timed_out"], "outcomes: {kinds:?}");
        let completed = crate::batch::run_net_batch(&net_faulty_batch(1));
        assert_eq!(completed.completed().count(), 1);
        let all: Vec<(u64, &crate::batch::NetSeedOutcome)> = report
            .seeds
            .iter()
            .zip(&report.outcomes)
            .chain(completed.seeds.iter().zip(&completed.outcomes))
            .map(|(&s, o)| (s, o))
            .collect();
        for (seed, outcome) in all {
            let mut text = String::new();
            encode_net_seed_outcome(seed, outcome, &mut text);
            let mut lines = text.lines();
            let (dseed, decoded) = decode_net_seed_outcome(&mut lines).expect("decode");
            assert_eq!(dseed, seed);
            assert_eq!(lines.next(), None, "decoder must consume the whole block");
            let mut re = String::new();
            encode_net_seed_outcome(dseed, &decoded, &mut re);
            assert_eq!(re, text, "seed {seed} round trip not byte-exact");
        }
    }

    #[test]
    fn net_checkpoint_resumes_bit_exactly_and_rejects_mismatches() {
        let dir = scratch("net-store");
        let cfg = net_faulty_batch(3);
        let ck = NetBatchCheckpoint::create(&dir, &cfg).expect("create");
        let full = crate::batch::run_net_batch_checkpointed(&cfg, &ck).expect("run");
        assert_eq!(full.completed().count(), 3);
        drop(ck);
        // Simulate a crash: drop the acknowledgements for seeds 1 and 2
        // (ack order is thread-dependent, so filter by content rather
        // than position) and re-run; restored + fresh outcomes must
        // merge identically.
        let manifest = dir.join(MANIFEST_FILE);
        let text = fs::read_to_string(&manifest).expect("read manifest");
        let keep: Vec<&str> = text
            .lines()
            .filter(|l| !l.contains(r#""type":"done""#) || l.contains(r#""seed_lo":0"#))
            .collect();
        fs::write(&manifest, keep.join("\n") + "\n").expect("truncate manifest");
        let ck = NetBatchCheckpoint::resume(&dir, &cfg).expect("resume");
        assert_eq!(ck.restored_seeds(), vec![0], "only seed 0 stays acknowledged");
        let resumed = crate::batch::run_net_batch_checkpointed(&cfg, &ck).expect("resume run");
        assert_eq!(resumed.supervisor.resumed, 1);
        for ((_, a), (_, b)) in full.completed().zip(resumed.completed()) {
            assert_eq!(a.flows, b.flows);
            assert_eq!(a.pause_counts, b.pause_counts);
            for (x, y) in a.switch_queues.iter().zip(&b.switch_queues) {
                assert_eq!(x.values(), y.values());
            }
        }
        drop(ck);
        let mut other = cfg.clone();
        other.rate_jitter_frac += 0.01;
        assert!(
            matches!(
                NetBatchCheckpoint::resume(&dir, &other),
                Err(CheckpointError::ConfigMismatch { .. })
            ),
            "a perturbed config must be rejected"
        );
        // A sim-batch checkpoint is a different configuration entirely.
        assert!(
            matches!(
                BatchCheckpoint::resume(&dir, &faulty_batch(3)),
                Err(CheckpointError::ConfigMismatch { .. })
            ),
            "sim batches must not resume a net-batch directory"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_spec_rejects_dumps_without_embedded_config() {
        let mut text = schema_header();
        text.push('\n');
        text.push_str(r#"{"type":"postmortem","seed":1,"cause":"boom","open_spans":0,"events":0}"#);
        text.push('\n');
        let err = replay_spec_from_postmortem(&text).unwrap_err();
        assert!(matches!(err, CheckpointError::Format(m) if m.contains("replay")));
    }
}
