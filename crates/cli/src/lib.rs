//! The `dcebcn` command-line tool: the DCE-BCN analysis library from the
//! shell.
//!
//! ```console
//! $ dcebcn analyze --n 50 --capacity 10e9 --q0 2.5e6 --buffer 5e6
//! $ dcebcn buffer  --n 100 --capacity 10e9
//! $ dcebcn simulate --t-end 0.1 --out trace.csv
//! $ dcebcn atlas --grid 9 --out atlas.csv
//! $ dcebcn packet --t-end 0.5
//! $ dcebcn trace thm1 --out trace.jsonl
//! ```
//!
//! Every subcommand starts from the paper's default parameterisation and
//! overrides fields from flags (see [`flags::PARAM_FLAGS`]). The library
//! half of the crate (this module tree) carries all logic so it is
//! testable without spawning processes; the `dcebcn` binary is a thin
//! wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod flags;
pub mod report;

use std::fmt;

/// CLI-level errors (bad flags, unknown commands, invalid
/// configurations, failed runs, I/O).
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The user asked for something the tool does not understand.
    Usage(String),
    /// Parameter validation or analysis failure.
    Analysis(String),
    /// The ODE integrator failed.
    Solver(odesolve::SolveError),
    /// A simulator configuration was rejected.
    Sim(dcesim::error::ConfigError),
    /// A batch run failed under `--fail-fast`.
    Batch(String),
    /// The watchdog demoted seeds and `--fail-fast` was given.
    Timeout(String),
    /// A postmortem replay did not reproduce the recorded failure.
    Replay(String),
    /// Filesystem output failure.
    Io(std::io::Error),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Analysis(msg) => write!(f, "analysis error: {msg}"),
            CliError::Solver(e) => write!(f, "solver error: {e}"),
            CliError::Sim(e) => write!(f, "simulation config error: {e}"),
            CliError::Batch(msg) => write!(f, "batch error: {msg}"),
            CliError::Timeout(msg) => write!(f, "watchdog timeout: {msg}"),
            CliError::Replay(msg) => write!(f, "replay mismatch: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<odesolve::SolveError> for CliError {
    fn from(e: odesolve::SolveError) -> Self {
        CliError::Solver(e)
    }
}

impl From<dcesim::error::ConfigError> for CliError {
    fn from(e: dcesim::error::ConfigError) -> Self {
        CliError::Sim(e)
    }
}

/// Entry point shared by the binary and the tests: runs the tool on
/// `args` (without the program name) and returns the rendered output.
///
/// # Errors
///
/// Returns [`CliError`] for unknown commands, malformed flags, invalid
/// parameters, or output failures.
pub fn run(args: &[String]) -> Result<String, CliError> {
    // The global `--telemetry` flag also gates `log_line!` diagnostics;
    // each command still parses and validates it like any other flag.
    if let Some(i) = args.iter().position(|a| a == "--telemetry") {
        if let Some(Ok(level)) = args.get(i + 1).map(|v| v.parse::<telemetry::TelemetryLevel>()) {
            telemetry::set_quiet(!level.enabled());
        }
    }
    // The global `--threads` flag sets the parallel worker count for
    // every sweep the command runs (atlas cells, batch seeds, frontier
    // scans). Applied process-wide up front, mirroring `--telemetry`,
    // and validated here so a bad value fails before any work starts.
    if let Some(i) = args.iter().position(|a| a == "--threads") {
        match args.get(i + 1).and_then(|v| parkit::parse_threads(v)) {
            Some(n) => parkit::set_threads(n),
            None => {
                return Err(CliError::Usage(format!(
                    "--threads expects a positive integer, got `{}`",
                    args.get(i + 1).map_or("", |v| v.as_str())
                )));
            }
        }
    }
    let Some((command, rest)) = args.split_first() else {
        return Ok(usage());
    };
    match command.as_str() {
        "analyze" => commands::analyze(rest),
        "buffer" => commands::buffer(rest),
        "simulate" => commands::simulate(rest),
        "atlas" => commands::atlas(rest),
        "packet" => commands::packet(rest),
        "batch" => commands::batch(rest),
        "trace" => commands::trace(rest),
        "report" => commands::report(rest),
        "query" => commands::query(rest),
        "replay" => commands::replay(rest),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(CliError::Usage(format!("unknown command `{other}`; run `dcebcn help`"))),
    }
}

/// The top-level usage text.
#[must_use]
pub fn usage() -> String {
    "dcebcn — BCN congestion-control analysis (Ren & Jiang, ICDCS 2010)\n\
     \n\
     commands:\n\
     \x20 analyze   classify the system and apply the strong-stability criteria\n\
     \x20 buffer    buffer sizing: Theorem 1 vs the exact trajectory need\n\
     \x20 simulate  integrate the switched fluid model, write a CSV trace\n\
     \x20 atlas     criterion atlas over the (Gi, Gd) gain plane, as CSV\n\
     \x20 packet    run the packet-level simulator and summarise\n\
     \x20 batch     multi-seed packet-level batch with jittered workloads\n\
     \x20 trace     instrumented run: telemetry summary + JSONL event trace\n\
     \x20 report    render telemetry (live run or JSONL trace) as JSON + SVG + prom\n\
     \x20 query     batched stability queries: JSONL questions in, JSONL answers out\n\
     \x20 replay    re-run the seed recorded in a postmortem dump deterministically\n\
     \n\
     common flags (defaults = the paper's worked example):\n\
     \x20 --n <flows> --capacity <bit/s> --q0 <bits> --buffer <bits>\n\
     \x20 --gi <gain> --gd <gain> --ru <bit/s> --w <weight> --pm <prob>\n\
     \x20 --telemetry <off|summary|full>   (accepted by every command)\n\
     \x20 --threads <n>                    (parallel sweep workers; default\n\
     \x20                                   DCE_BCN_THREADS or all cores)\n\
     \n\
     command flags:\n\
     \x20 simulate: --t-end <s> --out <path.csv> [--nonlinear]\n\
     \x20           --engine <analytic|dopri5|hybrid>  (default analytic: closed-form\n\
     \x20                                        leg propagation; nonlinear or\n\
     \x20                                        instrumented runs use dopri5;\n\
     \x20                                        hybrid co-simulates packets with\n\
     \x20                                        analytic fast-forward)\n\
     \x20 atlas:    --grid <n> --out <path.csv>\n\
     \x20 packet:   --t-end <s> --frame-bits <bits> --faults <spec>\n\
     \x20           --scheduler <wheel|heap>  (default wheel: hierarchical timing\n\
     \x20                                      wheel; heap is the reference engine,\n\
     \x20                                      bit-identical results)\n\
     \x20           --engine <packet|hybrid>  (default packet; hybrid fast-forwards\n\
     \x20                                      quiescent stretches analytically)\n\
     \x20           --hybrid-guard <spec>     (epoch-controller knobs, see below)\n\
     \x20           --topo <spec> --traffic <spec>  (multi-hop fabric run, see\n\
     \x20                                      below; dumbbell-only flags rejected)\n\
     \x20 batch:    --seeds <n> --t-end <s> --start-jitter <s> --rate-jitter <frac>\n\
     \x20           --frame-bits <bits> --out <path.csv> --faults <spec> [--fail-fast]\n\
     \x20           --scheduler <wheel|heap> --postmortem-dir <dir>  (default results;\n\
     \x20                                      quarantined seeds dump their flight\n\
     \x20                                      recorder as postmortem-<seed>.jsonl)\n\
     \x20           --checkpoint-dir <dir> [--resume]  (persist per-seed outcomes;\n\
     \x20                                      --resume skips seeds already done and\n\
     \x20                                      merges a bit-identical final report)\n\
     \x20           --max-seed-events <n>   (watchdog: demote a seed to timed-out\n\
     \x20                                    after n simulator events; deterministic)\n\
     \x20           --seed-deadline-ms <ms> (watchdog: wall-clock deadline per seed;\n\
     \x20                                    non-deterministic, off by default)\n\
     \x20           --seed-retries <n> --retry-backoff-ms <ms>  (re-run failed seeds\n\
     \x20                                    up to n times with exponential backoff)\n\
     \x20           --engine <packet|hybrid> --hybrid-guard <spec>  (as in packet)\n\
     \x20           --topo <spec> --traffic <spec>  (fabric batch; multi-hop engine,\n\
     \x20                                      rate jitter / checkpoint / watchdog /\n\
     \x20                                      faults as above; sim-only flags such\n\
     \x20                                      as --engine or --seed-retries are\n\
     \x20                                      rejected)\n\
     \x20 trace:    <thm1|limit-cycle|packet> --t-end <s> --out <path.jsonl>\n\
     \x20           --engine <analytic|dopri5>  (fluid scenarios)\n\
     \x20           --engine <packet|hybrid>    (packet scenario; other engines are\n\
     \x20                                        rejected with the valid list)\n\
     \x20           --scheduler <wheel|heap> --hybrid-guard <spec>  (packet scenario\n\
     \x20                                        only)\n\
     \x20           --topo <spec> --traffic <spec>  (instrumented fabric run)\n\
     \x20 report:   <thm1|limit-cycle|packet|victim> --t-end <s>\n\
     \x20           --out-dir <dir>   (default results/report: report.json,\n\
     \x20                              timeline_queue.svg, timeline_rate.svg,\n\
     \x20                              metrics.prom)\n\
     \x20           --from <path.jsonl>  (render a saved trace instead of running;\n\
     \x20                                 stale schema versions are rejected)\n\
     \x20 query:    --in <path.jsonl> --out <path.jsonl>  (default stdin/stdout)\n\
     \x20           --chunk <n>  (queries evaluated per batch; default 4096,\n\
     \x20                         bounds memory on unbounded streams)\n\
     \x20           each input line: {\"type\":\"query\",\"gi\":2.0,...} — any of the\n\
     \x20           common parameter flags as fields (missing fields = paper\n\
     \x20           defaults) plus optional max_legs; answers stream out in\n\
     \x20           input order as {\"type\":\"answer\",...} lines\n\
     \x20           [--strict]  (fail fast on the first malformed line; the\n\
     \x20                        default skips it, emits an {\"type\":\"error\",...}\n\
     \x20                        record in place of the answer, and continues)\n\
     \x20 replay:   <postmortem-<seed>.jsonl>  (reconstruct the seeded config and\n\
     \x20           fault plan from the dump, re-run the seed, and verify the\n\
     \x20           recorded failure reproduces; divergence exits with code 11)\n\
     \n\
     hybrid epoch controller (--hybrid-guard, comma-separated key=value items):\n\
     \x20 eq=<frac> margin=<frac> min-ff=<s> max-ff=<s> max-legs=<n>\n\
     \x20 always-packet       (bare key = true: drive the run through the hybrid\n\
     \x20                      wrapper but never fast-forward — bit-identical to\n\
     \x20                      the pure packet engine)\n\
     \x20 e.g. dcebcn packet --engine hybrid --hybrid-guard eq=0.1,min-ff=5e-4\n\
     \n\
     scale-out fabrics (--topo / --traffic on packet, batch, and trace):\n\
     \x20 --topo fat-tree:k=8[,link=1e9][,delay=1e-6][,frame=8000]\n\
     \x20 --topo leaf-spine:leaves=16,spines=4,hosts-per-leaf=32[,oversub=2]\n\
     \x20        [,link=...][,delay=...][,frame=...]\n\
     \x20 --traffic incast[:senders=512][,dst=0][,load=2]  (default: every host\n\
     \x20                      fans into the last one at 2x its access capacity)\n\
     \x20 --traffic permutation[:load=0.9]\n\
     \x20 --traffic all-to-all[:hosts=16][,load=2]\n\
     \x20 e.g. dcebcn packet --topo fat-tree:k=8 --traffic incast:senders=128\n\
     \x20      dcebcn batch --topo leaf-spine:leaves=8,spines=2,hosts-per-leaf=16 \\\n\
     \x20                   --seeds 8 --checkpoint-dir results/ck --faults seed=3\n\
     \n\
     fault injection (--faults, comma-separated key=value items):\n\
     \x20 seed=<u64> feedback-loss=<p> feedback-corrupt=<p> feedback-delay=<s>\n\
     \x20 feedback-reorder=<p> reorder-window=<s> data-loss=<p> data-burst=<n>\n\
     \x20 flap-period=<s> flap-down=<s> pause-storm=<p> pause-factor=<x>\n\
     \x20 panic-seed=<seed>   (batch only: that seed panics; it is\n\
     \x20                      quarantined unless --fail-fast is given)\n\
     \x20 e.g. dcebcn batch --seeds 8 --faults feedback-loss=0.05,seed=7\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(ToString::to_string).collect()
    }

    #[test]
    fn no_args_prints_usage() {
        let out = run(&[]).unwrap();
        assert!(out.contains("commands:"));
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        let err = run(&argv("frobnicate")).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn bad_threads_value_is_a_usage_error() {
        for bad in ["analyze --threads 0", "analyze --threads many", "analyze --threads"] {
            let err = run(&argv(bad)).unwrap_err();
            assert!(matches!(err, CliError::Usage(_)), "{bad}");
            assert!(err.to_string().contains("--threads"), "{bad}: {err}");
        }
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert!(run(&argv(h)).unwrap().contains("dcebcn"));
        }
    }
}
