//! The start-up (warm-up) stage of the BCN system (paper Section IV-C).
//!
//! From the cold start `q(0) = 0`, `r_i(0) = mu` with aggregate rate
//! `N mu < C`, the queue stays empty and the switch observes
//! `sigma = q0` (no backlog, no variation), so the aggregate rate ramps
//! linearly at slope `a q0` until it reaches capacity after
//!
//! ```text
//! T0 = (C - N mu) / (a q0)
//! ```
//!
//! after which the phase-plane motion proper starts from `(-q0, 0)`.
//! This is why the paper takes `(-q0, 0)` as the canonical initial point,
//! and why shrinking `q0` (good for strong stability, Theorem 1) prolongs
//! the start-up — the trade-off quantified here.

use crate::error::BcnError;
use crate::params::BcnParams;

/// The warm-up duration `T0 = (C - N mu)/(a q0)` for per-flow initial
/// rate `mu`.
///
/// # Errors
///
/// Returns [`BcnError::InvalidParameter`] if `mu` is negative or the
/// aggregate initial rate `N mu` already meets/exceeds capacity (then
/// there is no warm-up stage).
pub fn warmup_duration(params: &BcnParams, mu: f64) -> Result<f64, BcnError> {
    if !(mu.is_finite() && mu >= 0.0) {
        return Err(BcnError::InvalidParameter {
            name: "mu",
            reason: format!("initial rate must be non-negative and finite, got {mu}"),
        });
    }
    let aggregate = mu * f64::from(params.n_flows);
    if aggregate >= params.capacity {
        return Err(BcnError::InvalidParameter {
            name: "mu",
            reason: format!(
                "aggregate initial rate {aggregate} already at/above capacity {}",
                params.capacity
            ),
        });
    }
    Ok((params.capacity - aggregate) / (params.a() * params.q0))
}

/// A sampled warm-up ramp.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmupRamp {
    /// Sample times from 0 to `T0`.
    pub times: Vec<f64>,
    /// Aggregate rate at each sample (linear ramp ending exactly at `C`).
    pub aggregate_rate: Vec<f64>,
    /// The warm-up duration `T0`.
    pub t0: f64,
}

/// Samples the (exactly linear) warm-up ramp at `n_samples >= 2` points.
///
/// # Errors
///
/// Same as [`warmup_duration`].
///
/// # Panics
///
/// Panics if `n_samples < 2`.
pub fn warmup_ramp(params: &BcnParams, mu: f64, n_samples: usize) -> Result<WarmupRamp, BcnError> {
    assert!(n_samples >= 2, "need at least two samples");
    let t0 = warmup_duration(params, mu)?;
    let agg0 = mu * f64::from(params.n_flows);
    let slope = params.a() * params.q0;
    let mut times = Vec::with_capacity(n_samples);
    let mut rates = Vec::with_capacity(n_samples);
    for i in 0..n_samples {
        let t = t0 * i as f64 / (n_samples - 1) as f64;
        times.push(t);
        rates.push(agg0 + slope * t);
    }
    Ok(WarmupRamp { times, aggregate_rate: rates, t0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_matches_formula() {
        let p = BcnParams::paper_defaults();
        // Cold start: mu = 0 -> T0 = C/(a q0).
        let t0 = warmup_duration(&p, 0.0).unwrap();
        let expect = p.capacity / (p.a() * p.q0);
        assert!((t0 - expect).abs() < 1e-15 * expect);
    }

    #[test]
    fn duration_shrinks_with_larger_q0() {
        // The paper's trade-off: larger q0 -> faster start-up (but larger
        // overshoot; see stability tests).
        let p = BcnParams::paper_defaults();
        let t_small = warmup_duration(&p.clone().with_q0(1.0e6), 0.0).unwrap();
        let t_large = warmup_duration(&p.clone().with_q0(4.0e6), 0.0).unwrap();
        assert!(t_large < t_small);
        assert!((t_small / t_large - 4.0).abs() < 1e-12);
    }

    #[test]
    fn ramp_ends_at_capacity() {
        let p = BcnParams::test_defaults();
        let mu = 0.3 * p.fair_share();
        let ramp = warmup_ramp(&p, mu, 11).unwrap();
        assert_eq!(ramp.times.len(), 11);
        let last = *ramp.aggregate_rate.last().unwrap();
        assert!((last - p.capacity).abs() < 1e-9 * p.capacity, "ends at {last}");
        // Ramp is monotone increasing.
        for w in ramp.aggregate_rate.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn rejects_saturated_start() {
        let p = BcnParams::test_defaults();
        assert!(warmup_duration(&p, p.fair_share()).is_err());
        assert!(warmup_duration(&p, -1.0).is_err());
        assert!(warmup_duration(&p, f64::NAN).is_err());
    }

    #[test]
    fn warmup_agrees_with_saturating_simulation() {
        // The physical simulator should keep the queue empty during the
        // ramp and hit capacity at ~T0.
        use crate::simulate::SaturatingFluid;
        let p = BcnParams::test_defaults();
        let mu = 0.5 * p.fair_share();
        let t0 = warmup_duration(&p, mu).unwrap();
        let sim = SaturatingFluid::new(p.clone());
        let run = sim.run(0.0, mu * f64::from(p.n_flows), t0, t0 / 20_000.0, 100);
        // Queue stays empty during the entire warm-up.
        assert!(run.max_queue < 1e-6 * p.q0, "queue built early: {}", run.max_queue);
        // Aggregate rate reaches ~C at the end.
        let end_rate = *run.rate.last().unwrap();
        assert!((end_rate - p.capacity).abs() < 5e-3 * p.capacity, "end rate {end_rate}");
    }
}
