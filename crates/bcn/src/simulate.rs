//! Fluid trajectory simulation.
//!
//! Two simulators operate at different fidelities:
//!
//! * [`fluid_trajectory`] — event-located hybrid integration of the
//!   (linearised or nonlinear) switched system on the unbounded phase
//!   plane: the object of the paper's analysis.
//! * [`SaturatingFluid`] — the *physical* fluid model with the buffer
//!   walls enforced: the queue saturates at `0` and `B`, drops accumulate
//!   while the buffer is full, and the congestion measure uses the
//!   saturated queue derivative. This is what the dashed segments of the
//!   paper's Fig. 3 (curves l3/l4 pinned at the walls) correspond to, and
//!   it provides the drop/underflow ground truth for the criterion
//!   experiments.

use odesolve::hybrid::{integrate_hybrid_telemetry, HybridSolution};
use odesolve::{Dopri5, Options, SolveError};
use telemetry::{ExtremumKind, Telemetry};

use crate::model::{BcnFluid, Linearity};
use crate::params::BcnParams;

/// Trajectory engine selector for [`fluid_trajectory`].
///
/// The linearised switched system is *solved* — every region flow has a
/// closed form (paper Eqs. 12–34) — so the default engine propagates legs
/// analytically via [`crate::propagate::analytic_trajectory`]. The DOPRI5
/// hybrid integrator remains available as the independent cross-check and
/// is used automatically whenever the analytic form does not apply (the
/// full nonlinear decrease law) or solver telemetry is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// Closed-form leg propagation (linearised regions only; falls back
    /// to numeric integration for nonlinear systems or telemetry runs).
    #[default]
    Analytic,
    /// Event-located DOPRI5 hybrid integration.
    Dopri5,
}

/// Options for [`fluid_trajectory`].
#[derive(Debug, Clone, PartialEq)]
pub struct FluidOptions {
    /// Model-time horizon in seconds.
    pub t_end: f64,
    /// Integrator tolerance (numeric engine only).
    pub tol: f64,
    /// Maximum number of region switches before stopping.
    pub max_switches: usize,
    /// Optional dense recording interval.
    pub record_dt: Option<f64>,
    /// Trajectory engine (see [`Engine`] for the fallback rules).
    pub engine: Engine,
}

impl Default for FluidOptions {
    fn default() -> Self {
        Self {
            t_end: 1.0,
            tol: 1e-9,
            max_switches: 10_000,
            record_dt: None,
            engine: Engine::default(),
        }
    }
}

impl FluidOptions {
    /// Sets the time horizon.
    #[must_use]
    pub fn with_t_end(mut self, t_end: f64) -> Self {
        self.t_end = t_end;
        self
    }

    /// Sets the dense recording interval.
    #[must_use]
    pub fn with_record_dt(mut self, dt: f64) -> Self {
        self.record_dt = Some(dt);
        self
    }

    /// Selects the trajectory engine.
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }
}

/// Integrates the switched BCN system from `p0` (deviation coordinates)
/// with exact event location on the switching line.
///
/// # Errors
///
/// Propagates [`SolveError`] from the integrator.
pub fn fluid_trajectory(
    sys: &BcnFluid,
    p0: [f64; 2],
    opts: &FluidOptions,
) -> Result<HybridSolution<2>, SolveError> {
    fluid_trajectory_telemetry(sys, p0, opts, None)
}

/// Like [`fluid_trajectory`], recording solver telemetry (step sizes,
/// region switches, event-location iterations) plus queue occupancy
/// samples and queue extrema into `tel` when provided.
///
/// The fluid state is in deviation coordinates `x = q - q0`; queue
/// telemetry is reported in physical bits (`q0 + x`). Extrema are found
/// by scanning the recorded trajectory for sign changes of `y = dq/dt`,
/// so their resolution follows `opts.record_dt` (or the accepted solver
/// steps when dense recording is off).
///
/// # Errors
///
/// Propagates [`SolveError`] from the integrator.
pub fn fluid_trajectory_telemetry(
    sys: &BcnFluid,
    p0: [f64; 2],
    opts: &FluidOptions,
    mut tel: Option<&mut Telemetry>,
) -> Result<HybridSolution<2>, SolveError> {
    // The analytic engine applies only where the closed forms do: the
    // linearised model. Telemetry-instrumented runs stay numeric too —
    // solver telemetry (step sizes, event iterations) only exists there.
    let tel_enabled = tel.as_deref().is_some_and(Telemetry::enabled);
    if opts.engine == Engine::Analytic && sys.linearity() == Linearity::Linearized && !tel_enabled {
        return Ok(crate::propagate::analytic_trajectory(sys, p0, opts));
    }
    let mut stepper = Dopri5::with_tolerances(opts.tol, opts.tol);
    let mut o = Options::default();
    if let Some(dt) = opts.record_dt {
        o = o.with_record_dt(dt);
    }
    let out = integrate_hybrid_telemetry(
        sys,
        0.0,
        p0,
        opts.t_end,
        opts.max_switches,
        &mut stepper,
        &o,
        tel.as_deref_mut(),
    )?;
    if let Some(tel) = tel {
        if tel.enabled() {
            record_queue_telemetry(sys, &out, tel);
        }
    }
    Ok(out)
}

/// Replays the recorded trajectory into queue-occupancy samples and
/// extremum events (sign changes of `y = dq/dt` between samples).
fn record_queue_telemetry(sys: &BcnFluid, out: &HybridSolution<2>, tel: &mut Telemetry) {
    let q0 = sys.params().q0;
    let times = out.solution.times();
    let states = out.solution.states();
    let mut prev: Option<(f64, [f64; 2])> = None;
    for (&t, &s) in times.iter().zip(states.iter()) {
        tel.queue_sample(t, q0 + s[0]);
        if let Some((tp, sp)) = prev {
            // A y sign change between samples brackets dq/dt = 0: a queue
            // extremum. Locate it by linear interpolation of y.
            if sp[1] > 0.0 && s[1] <= 0.0 || sp[1] < 0.0 && s[1] >= 0.0 {
                let frac = if s[1] == sp[1] { 0.0 } else { sp[1] / (sp[1] - s[1]) };
                let te = tp + frac * (t - tp);
                let xe = sp[0] + frac * (s[0] - sp[0]);
                let kind = if sp[1] > 0.0 { ExtremumKind::Max } else { ExtremumKind::Min };
                tel.queue_extremum(te, q0 + xe, kind);
            }
        }
        prev = Some((t, s));
    }
}

/// Result of a saturating (physical) fluid run.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturatingRun {
    /// Sample times (seconds).
    pub times: Vec<f64>,
    /// Queue lengths `q(t)` in bits (clamped to `[0, B]`).
    pub queue: Vec<f64>,
    /// Aggregate source rate `N r(t)` in bit/s.
    pub rate: Vec<f64>,
    /// Total bits dropped at the full buffer.
    pub dropped_bits: f64,
    /// Total bits of service lost to an empty queue with the aggregate
    /// rate below capacity (link underutilisation).
    pub idle_bits: f64,
    /// Largest queue observed (bits).
    pub max_queue: f64,
    /// Smallest queue observed after the first buffer departure (bits).
    pub min_queue_after_start: f64,
}

impl SaturatingRun {
    /// Whether any packets (bits) were dropped.
    #[must_use]
    pub fn has_drops(&self) -> bool {
        self.dropped_bits > 0.0
    }
}

/// The physical fluid model: queue clamped to `[0, B]` with drop and
/// idle-time accounting (forward-Euler with saturation; the clamped
/// dynamics are non-smooth, so a small fixed step is the robust choice).
#[derive(Debug, Clone, PartialEq)]
pub struct SaturatingFluid {
    params: BcnParams,
    linearity: Linearity,
}

impl SaturatingFluid {
    /// Builds the physical model with the full nonlinear decrease law.
    #[must_use]
    pub fn new(params: BcnParams) -> Self {
        Self { params, linearity: Linearity::FullNonlinear }
    }

    /// Uses the linearised decrease law instead.
    #[must_use]
    pub fn linearized(params: BcnParams) -> Self {
        Self { params, linearity: Linearity::Linearized }
    }

    /// The parameter set.
    #[must_use]
    pub fn params(&self) -> &BcnParams {
        &self.params
    }

    /// Runs the model from physical state `(q0_bits, aggregate_rate)` for
    /// `t_end` seconds with fixed step `dt`, recording every
    /// `record_every`-th sample.
    ///
    /// # Panics
    ///
    /// Panics if `dt` or `t_end` are non-positive, or `record_every` is 0.
    #[must_use]
    pub fn run(
        &self,
        q_init: f64,
        rate_init: f64,
        t_end: f64,
        dt: f64,
        record_every: usize,
    ) -> SaturatingRun {
        assert!(dt > 0.0 && t_end > 0.0, "time step and horizon must be positive");
        assert!(record_every > 0, "record_every must be at least 1");
        let p = &self.params;
        let b_total = p.buffer;
        let cap = p.capacity;
        let k = p.k();
        let n_steps = (t_end / dt).ceil() as usize;

        let mut q = q_init.clamp(0.0, b_total);
        let mut rate = rate_init.max(0.0);
        let mut dropped = 0.0;
        let mut idle = 0.0;
        let mut max_q = q;
        let mut min_q_after = f64::INFINITY;
        let mut started = q > 0.0;

        let mut times = Vec::with_capacity(n_steps / record_every + 2);
        let mut queue = Vec::with_capacity(times.capacity());
        let mut rates = Vec::with_capacity(times.capacity());
        times.push(0.0);
        queue.push(q);
        rates.push(rate);

        for step in 1..=n_steps {
            // Unclamped queue drift and its saturated (physical) version.
            let drift = rate - cap;
            let q_dot = if (q <= 0.0 && drift < 0.0) || (q >= b_total && drift > 0.0) {
                0.0
            } else {
                drift
            };
            // Congestion measure from the *observed* queue dynamics.
            let sigma = (p.q0 - q) - k * q_dot;
            // Rate law (Eq. 7), scaled to the aggregate rate R = N r:
            // dR/dt = a sigma (increase) or b sigma R (decrease).
            let rate_dot = if sigma > 0.0 {
                p.a() * sigma
            } else {
                p.b()
                    * sigma
                    * match self.linearity {
                        Linearity::FullNonlinear => rate,
                        Linearity::Linearized => cap,
                    }
            };

            // Accounting.
            if q >= b_total && drift > 0.0 {
                dropped += drift * dt;
            }
            if q <= 0.0 && drift < 0.0 {
                idle += -drift * dt;
            }

            q = (q + q_dot * dt).clamp(0.0, b_total);
            rate = (rate + rate_dot * dt).max(0.0);
            if q > 0.0 {
                started = true;
            }
            max_q = max_q.max(q);
            if started {
                min_q_after = min_q_after.min(q);
            }
            if step % record_every == 0 || step == n_steps {
                times.push(step as f64 * dt);
                queue.push(q);
                rates.push(rate);
            }
        }

        SaturatingRun {
            times,
            queue,
            rate: rates,
            dropped_bits: dropped,
            idle_bits: idle,
            max_queue: max_q,
            min_queue_after_start: if min_q_after.is_finite() { min_q_after } else { q },
        }
    }

    /// Runs from the canonical start (empty queue, aggregate rate at
    /// capacity) with a step automatically chosen well below the fastest
    /// region's rotation period.
    #[must_use]
    pub fn run_canonical(&self, t_end: f64) -> SaturatingRun {
        let p = &self.params;
        let beta_fast = (p.a().max(p.b() * p.capacity)).sqrt();
        let dt = (0.002 / beta_fast).min(t_end / 1000.0);
        let record_every = ((t_end / dt / 4000.0).ceil() as usize).max(1);
        self.run(0.0, p.capacity, t_end, dt, record_every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stability;

    fn params() -> BcnParams {
        BcnParams::test_defaults()
    }

    #[test]
    fn hybrid_trajectory_converges_towards_equilibrium() {
        let p = params();
        let sys = BcnFluid::linearized(p.clone());
        let opts = FluidOptions::default().with_t_end(60.0);
        let out = fluid_trajectory(&sys, p.initial_point(), &opts).unwrap();
        let end = out.solution.last_state();
        let start_amp = p.q0;
        assert!(
            end[0].abs() < 0.6 * start_amp,
            "no contraction: {end:?} from amplitude {start_amp}"
        );
        assert!(out.switch_count() > 4, "switches {}", out.switch_count());
    }

    #[test]
    fn hybrid_extrema_match_round_analysis() {
        // The ODE-integrated maximum queue must agree with the exact
        // closed-form first-round maximum. Engine pinned to DOPRI5: this
        // test is the numeric-vs-closed-form cross-check.
        let p = params();
        let sys = BcnFluid::linearized(p.clone());
        let fr = crate::rounds::first_round(&p).unwrap();
        let opts = FluidOptions {
            t_end: 10.0,
            tol: 1e-11,
            max_switches: 100,
            record_dt: Some(1e-3),
            engine: Engine::Dopri5,
        };
        let out = fluid_trajectory(&sys, p.initial_point(), &opts).unwrap();
        let max_x = out.solution.max_component(0);
        assert!(
            (max_x - fr.max1_x).abs() < 1e-4 * fr.max1_x.abs(),
            "integrated {max_x} vs closed form {}",
            fr.max1_x
        );
    }

    #[test]
    fn analytic_engine_matches_numeric_trajectory() {
        // Engine::Analytic (the default) must reproduce the DOPRI5 hybrid
        // path: same switch sequence, endpoints to integrator tolerance,
        // and the exact first-round maximum.
        let p = params();
        let sys = BcnFluid::linearized(p.clone());
        let base = FluidOptions {
            t_end: 0.5,
            tol: 1e-11,
            max_switches: 100,
            record_dt: Some(1e-3),
            engine: Engine::Analytic,
        };
        let ana = fluid_trajectory(&sys, p.initial_point(), &base).unwrap();
        let num =
            fluid_trajectory(&sys, p.initial_point(), &base.clone().with_engine(Engine::Dopri5))
                .unwrap();
        assert_eq!(ana.switch_count(), num.switch_count(), "switch sequences differ");
        for (a, n) in ana.intervals.iter().zip(num.intervals.iter()) {
            assert_eq!(a.mode, n.mode);
            assert!(
                (a.t_end - n.t_end).abs() < 1e-7 * base.t_end,
                "switch time {} vs {}",
                a.t_end,
                n.t_end
            );
        }
        let (za, zn) = (ana.solution.last_state(), num.solution.last_state());
        for i in 0..2 {
            let scale = if i == 0 { p.q0 } else { p.capacity };
            assert!(
                (za[i] - zn[i]).abs() < 1e-6 * scale,
                "endpoint component {i}: analytic {} vs numeric {}",
                za[i],
                zn[i]
            );
        }
        let fr = crate::rounds::first_round(&p).unwrap();
        let max_a = ana.solution.max_component(0);
        assert!(
            (max_a - fr.max1_x).abs() < 1e-9 * fr.max1_x.abs(),
            "analytic max {max_a} should be exact vs {}",
            fr.max1_x
        );
    }

    #[test]
    fn analytic_engine_falls_back_for_nonlinear_systems() {
        // The nonlinear decrease law has no closed form: the selector must
        // hand the run to DOPRI5, which still integrates successfully.
        let p = params();
        let sys = BcnFluid::new(p.clone());
        let out = fluid_trajectory(&sys, p.initial_point(), &FluidOptions::default()).unwrap();
        assert!(out.switch_count() > 0);
        assert!(out.solution.last_time() >= 1.0 - 1e-12);
    }

    #[test]
    fn saturating_run_with_roomy_buffer_has_no_drops() {
        let p = params().with_buffer(3.0e5); // far above the overshoot
        let run = SaturatingFluid::new(p).run_canonical(4.0);
        assert!(!run.has_drops(), "dropped {}", run.dropped_bits);
        assert!(run.max_queue < 3.0e5);
    }

    #[test]
    fn saturating_run_with_tight_buffer_drops() {
        // Shrink the buffer below the known overshoot: drops must appear.
        let p = params();
        let fr = crate::rounds::first_round(&p).unwrap();
        let tight = p.clone().with_buffer(p.q0 + 0.5 * fr.max1_x);
        let run = SaturatingFluid::linearized(tight).run_canonical(4.0);
        assert!(run.has_drops(), "expected drops, run max {}", run.max_queue);
    }

    #[test]
    fn saturating_queue_stays_physical() {
        let p = params();
        let run = SaturatingFluid::new(p.clone()).run_canonical(2.0);
        for &q in &run.queue {
            assert!((0.0..=p.buffer).contains(&q), "q = {q}");
        }
        for &r in &run.rate {
            assert!(r >= 0.0);
        }
    }

    #[test]
    fn saturating_max_queue_tracks_exact_analysis() {
        // With a large buffer the saturating model never clamps, so its
        // max queue approximates the unbounded analysis.
        let p = params().with_buffer(1.0e6);
        let exact = stability::exact_verdict(&p, 10);
        let run = SaturatingFluid::linearized(p.clone()).run_canonical(3.0);
        let expected = p.q0 + exact.max_x;
        assert!(
            (run.max_queue - expected).abs() < 0.03 * expected,
            "saturating {} vs exact {expected}",
            run.max_queue
        );
    }

    #[test]
    fn drop_accounting_is_consistent() {
        // Everything the sources pour in above capacity while the buffer
        // is pinned must show up as drops; a sanity lower bound.
        let p = params().with_buffer(p_tight());
        let run = SaturatingFluid::new(p).run_canonical(2.0);
        if run.has_drops() {
            assert!(run.dropped_bits > 0.0);
            assert!(run.dropped_bits < 2.0 * 1.0e6 * 2.0, "absurd drop volume");
        }
    }

    fn p_tight() -> f64 {
        let p = params();
        let fr = crate::rounds::first_round(&p).unwrap();
        p.q0 + 0.3 * fr.max1_x
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn rejects_bad_step() {
        let p = params();
        let _ = SaturatingFluid::new(p).run(0.0, 1.0, -1.0, 1e-3, 1);
    }
}
