//! Switching lines for variable-structure (piecewise-linear) systems.

/// The two open half-planes a [`SwitchingLine`] cuts the plane into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HalfPlane {
    /// Points with positive signed value `n . p > 0`.
    Positive,
    /// Points with negative signed value `n . p < 0`.
    Negative,
    /// Points on the line itself (within exact arithmetic).
    Boundary,
}

/// A line through the origin, `nx * x + ny * y = 0`, partitioning the phase
/// plane into the two control regions of a variable-structure system.
///
/// For the BCN model the switching function is `sigma = -(x + k y)`, so the
/// line is `x + k y = 0` with normal `(1, k)`; the *rate-increase* region
/// `sigma > 0` is this line's [`HalfPlane::Negative`] side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingLine {
    nx: f64,
    ny: f64,
}

impl SwitchingLine {
    /// Creates the line with normal vector `(nx, ny)` (need not be unit).
    ///
    /// # Panics
    ///
    /// Panics if the normal is zero or non-finite.
    #[must_use]
    pub fn new(nx: f64, ny: f64) -> Self {
        assert!(
            nx.is_finite() && ny.is_finite() && (nx != 0.0 || ny != 0.0),
            "switching-line normal must be finite and nonzero"
        );
        Self { nx, ny }
    }

    /// The line `x + k*y = 0` used by BCN-style controllers (normal
    /// `(1, k)`).
    #[must_use]
    pub fn bcn(k: f64) -> Self {
        Self::new(1.0, k)
    }

    /// The normal vector `(nx, ny)`.
    #[must_use]
    pub fn normal(&self) -> [f64; 2] {
        [self.nx, self.ny]
    }

    /// A unit vector along the line (rotate the normal by 90 degrees).
    #[must_use]
    pub fn direction(&self) -> [f64; 2] {
        let n = (self.nx * self.nx + self.ny * self.ny).sqrt();
        [-self.ny / n, self.nx / n]
    }

    /// Signed value `nx * x + ny * y`; zero exactly on the line.
    #[must_use]
    pub fn signed_value(&self, p: [f64; 2]) -> f64 {
        self.nx * p[0] + self.ny * p[1]
    }

    /// Which side of the line `p` lies on.
    #[must_use]
    pub fn side(&self, p: [f64; 2]) -> HalfPlane {
        let v = self.signed_value(p);
        if v > 0.0 {
            HalfPlane::Positive
        } else if v < 0.0 {
            HalfPlane::Negative
        } else {
            HalfPlane::Boundary
        }
    }

    /// The point on the line at signed arc-coordinate `s` (measured along
    /// [`Self::direction`] from the origin).
    #[must_use]
    pub fn point_at(&self, s: f64) -> [f64; 2] {
        let d = self.direction();
        [s * d[0], s * d[1]]
    }

    /// The signed arc-coordinate of the projection of `p` onto the line.
    #[must_use]
    pub fn coordinate_of(&self, p: [f64; 2]) -> f64 {
        let d = self.direction();
        p[0] * d[0] + p[1] * d[1]
    }

    /// Whether the vector field crosses the line transversally at `p`
    /// (i.e. `f(p)` has a nonzero component along the normal). Sliding
    /// motion is only possible where this returns `false`.
    #[must_use]
    pub fn is_transversal(&self, f_at_p: [f64; 2]) -> bool {
        self.nx * f_at_p[0] + self.ny * f_at_p[1] != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sides_of_bcn_line() {
        let line = SwitchingLine::bcn(2.0);
        assert_eq!(line.side([1.0, 0.0]), HalfPlane::Positive);
        assert_eq!(line.side([-1.0, 0.0]), HalfPlane::Negative);
        assert_eq!(line.side([2.0, -1.0]), HalfPlane::Boundary);
    }

    #[test]
    fn direction_is_unit_and_on_line() {
        let line = SwitchingLine::bcn(3.0);
        let d = line.direction();
        let norm = (d[0] * d[0] + d[1] * d[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-14);
        assert!(line.signed_value(d).abs() < 1e-14);
    }

    #[test]
    fn point_and_coordinate_roundtrip() {
        let line = SwitchingLine::bcn(0.5);
        for s in [-3.0, -0.1, 0.0, 2.5] {
            let p = line.point_at(s);
            assert!((line.coordinate_of(p) - s).abs() < 1e-12);
            assert!(line.signed_value(p).abs() < 1e-12);
        }
    }

    #[test]
    fn transversality() {
        let line = SwitchingLine::bcn(1.0); // x + y = 0, normal (1, 1)
        assert!(line.is_transversal([1.0, 0.0]));
        assert!(!line.is_transversal([1.0, -1.0])); // tangent to the line
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn rejects_zero_normal() {
        let _ = SwitchingLine::new(0.0, 0.0);
    }
}
