//! The BCN reaction point (source-side rate regulator, paper Eq. 2).
//!
//! Located conceptually in the edge-switch / NIC, the reaction point
//! shapes one source's sending rate with the modified AIMD law:
//!
//! ```text
//! r <- r + Gi * Ru * sigma      sigma > 0   (additive increase)
//! r <- r * (1 + Gd * sigma)     sigma < 0   (multiplicative decrease)
//! ```
//!
//! A negative BCN message also *associates* the reaction point with the
//! congestion point (CPID): subsequent frames carry a rate-regulator tag
//! so the congestion point can send positive feedback when the queue
//! drains (paper Section II-B).

use crate::error::ConfigError;
use crate::frame::{BcnMessage, CpId};

/// Configuration of a reaction point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpConfig {
    /// Additive-increase gain `Gi`.
    pub gi: f64,
    /// Multiplicative-decrease gain `Gd`.
    pub gd: f64,
    /// Rate increase unit `Ru` (bit/s per unit of positive feedback).
    pub ru: f64,
    /// Dimensionless scale applied to both gains so that the discrete
    /// per-message updates integrate to the paper's fluid law. One
    /// message arrives per `1/pm` frames of this source, i.e. at rate
    /// `pm * r / frame_bits`, so matching `dr/dt = Gi Ru sigma` at the
    /// fair share requires `gain_scale = frame_bits * N / (pm * C)`
    /// (see `sim::SimConfig::from_fluid`). Use `1.0` for raw
    /// protocol-unit gains.
    pub gain_scale: f64,
    /// Rate floor (bit/s) — the regulator never strangles a source to
    /// zero (the real BCN has a minimum rate too).
    pub r_min: f64,
    /// Rate ceiling (bit/s) — the access line rate.
    pub r_max: f64,
}

impl RpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on non-finite or non-positive gains or
    /// an empty rate range.
    pub fn validate(&self) -> Result<(), ConfigError> {
        for (field, v) in [("rp.gi", self.gi), ("rp.gd", self.gd), ("rp.ru", self.ru)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ConfigError::new(field, "gains must be positive"));
            }
        }
        if !(self.gain_scale.is_finite() && self.gain_scale > 0.0) {
            return Err(ConfigError::new("rp.gain_scale", "gain scale must be positive"));
        }
        if !(self.r_min.is_finite()
            && self.r_max.is_finite()
            && self.r_min > 0.0
            && self.r_min < self.r_max)
        {
            return Err(ConfigError::new("rp.r_min", "need 0 < r_min < r_max"));
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive gains or an empty rate range (the
    /// panicking form of [`RpConfig::validate`]).
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Runtime state of a reaction point.
#[derive(Debug, Clone, PartialEq)]
pub struct ReactionPoint {
    cfg: RpConfig,
    rate: f64,
    associated: Option<CpId>,
    increases: u64,
    decreases: u64,
    ignored: u64,
}

impl ReactionPoint {
    /// Creates a reaction point with the given initial rate.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(cfg: RpConfig, initial_rate: f64) -> Self {
        cfg.assert_valid();
        let rate = initial_rate.clamp(cfg.r_min, cfg.r_max);
        Self { cfg, rate, associated: None, increases: 0, decreases: 0, ignored: 0 }
    }

    /// Current sending rate in bit/s.
    #[must_use]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The congestion point this regulator is currently associated with
    /// (frames are tagged with this CPID).
    #[must_use]
    pub fn associated_cp(&self) -> Option<CpId> {
        self.associated
    }

    /// Sets the regulator rate directly, clamped to the configured
    /// range — the hybrid engine's fluid→packet re-seed hook.
    pub(crate) fn set_rate(&mut self, rate: f64) {
        self.rate = rate.clamp(self.cfg.r_min, self.cfg.r_max);
    }

    /// Applies a received BCN message (paper Eq. 2). A message whose FB
    /// field does not decode to a finite value (corrupted wire frames)
    /// is counted and ignored rather than poisoning the rate.
    pub fn on_bcn(&mut self, msg: &BcnMessage) {
        if !msg.sigma.is_finite() {
            self.ignored += 1;
            return;
        }
        let sigma = msg.sigma * self.cfg.gain_scale;
        if msg.sigma > 0.0 {
            // Positive feedback only reaches us when tagged (the CP
            // enforces that); apply the additive increase.
            self.rate += self.cfg.gi * self.cfg.ru * sigma;
            self.increases += 1;
        } else if msg.sigma < 0.0 {
            self.associated = Some(msg.cpid);
            let factor = 1.0 + self.cfg.gd * sigma;
            // A severely negative sigma must not turn the rate negative.
            self.rate *= factor.max(0.0);
            self.decreases += 1;
        }
        self.rate = self.rate.clamp(self.cfg.r_min, self.cfg.r_max);
    }

    /// Number of additive increases applied.
    #[must_use]
    pub fn increase_count(&self) -> u64 {
        self.increases
    }

    /// Number of multiplicative decreases applied.
    #[must_use]
    pub fn decrease_count(&self) -> u64 {
        self.decreases
    }

    /// Number of non-finite (corrupted) messages discarded.
    #[must_use]
    pub fn ignored_count(&self) -> u64 {
        self.ignored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SourceId;

    fn cfg() -> RpConfig {
        RpConfig {
            gi: 1.0,
            gd: 1.0 / 64.0,
            ru: 1_000.0,
            gain_scale: 1.0,
            r_min: 100.0,
            r_max: 1.0e6,
        }
    }

    fn msg(sigma: f64) -> BcnMessage {
        BcnMessage { dst: SourceId(0), cpid: CpId(42), sigma }
    }

    #[test]
    fn additive_increase() {
        let mut rp = ReactionPoint::new(cfg(), 10_000.0);
        rp.on_bcn(&msg(3.0));
        assert!((rp.rate() - 13_000.0).abs() < 1e-9);
        assert_eq!(rp.increase_count(), 1);
    }

    #[test]
    fn multiplicative_decrease_and_association() {
        let mut rp = ReactionPoint::new(cfg(), 64_000.0);
        assert!(rp.associated_cp().is_none());
        rp.on_bcn(&msg(-16.0));
        // factor = 1 - 16/64 = 0.75.
        assert!((rp.rate() - 48_000.0).abs() < 1e-9);
        assert_eq!(rp.associated_cp(), Some(CpId(42)));
        assert_eq!(rp.decrease_count(), 1);
    }

    #[test]
    fn rate_clamped_to_floor_and_ceiling() {
        let mut rp = ReactionPoint::new(cfg(), 1_000.0);
        // Violent negative feedback: factor clamps at 0, rate at r_min.
        rp.on_bcn(&msg(-1.0e9));
        assert_eq!(rp.rate(), 100.0);
        // Violent positive feedback: rate caps at r_max.
        rp.on_bcn(&msg(1.0e9));
        assert_eq!(rp.rate(), 1.0e6);
    }

    #[test]
    fn gain_scale_multiplies_feedback() {
        let mut a = ReactionPoint::new(cfg(), 10_000.0);
        let mut b = ReactionPoint::new(RpConfig { gain_scale: 2.0, ..cfg() }, 10_000.0);
        a.on_bcn(&msg(3.0));
        b.on_bcn(&msg(3.0));
        assert!((b.rate() - 10_000.0) / (a.rate() - 10_000.0) - 2.0 < 1e-9);
    }

    #[test]
    fn zero_sigma_is_a_no_op() {
        let mut rp = ReactionPoint::new(cfg(), 10_000.0);
        rp.on_bcn(&msg(0.0));
        assert_eq!(rp.rate(), 10_000.0);
        assert_eq!(rp.increase_count() + rp.decrease_count(), 0);
    }

    #[test]
    fn initial_rate_is_clamped() {
        let rp = ReactionPoint::new(cfg(), 1.0e12);
        assert_eq!(rp.rate(), 1.0e6);
    }

    #[test]
    #[should_panic(expected = "r_min < r_max")]
    fn rejects_empty_rate_range() {
        let bad = RpConfig { r_min: 10.0, r_max: 5.0, ..cfg() };
        let _ = ReactionPoint::new(bad, 1.0);
    }

    #[test]
    fn validate_reports_typed_errors() {
        assert!(cfg().validate().is_ok());
        let err = RpConfig { gi: f64::NAN, ..cfg() }.validate().unwrap_err();
        assert_eq!(err.field, "rp.gi");
        let err = RpConfig { r_max: f64::INFINITY, ..cfg() }.validate().unwrap_err();
        assert_eq!(err.field, "rp.r_min");
    }

    #[test]
    fn non_finite_sigma_is_discarded() {
        let mut rp = ReactionPoint::new(cfg(), 10_000.0);
        rp.on_bcn(&msg(f64::NAN));
        rp.on_bcn(&msg(f64::INFINITY));
        rp.on_bcn(&msg(f64::NEG_INFINITY));
        assert_eq!(rp.rate(), 10_000.0, "corrupted feedback must not move the rate");
        assert_eq!(rp.ignored_count(), 3);
        assert!(rp.associated_cp().is_none());
    }
}
