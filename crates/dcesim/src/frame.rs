//! Frames on the wire: data, BCN messages, PAUSE.

/// Identifier of a source / reaction point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(pub u32);

/// Identifier of a congestion point (the paper's CPID field; in the real
/// frame a 64-bit quantity carrying the switch interface MAC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CpId(pub u64);

/// A data frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataFrame {
    /// Sending source.
    pub src: SourceId,
    /// Frame length in bits (header + payload).
    pub bits: f64,
    /// The rate-regulator tag: present once the source has been
    /// associated with a congestion point by a negative BCN message
    /// (paper Section II-B). Carries the CPID the source is regulating
    /// against.
    pub rrt: Option<CpId>,
}

/// The feedback content of a BCN message (the paper's Fig. 2 frame: DA,
/// SA, EtherType, CPID, FB — only the fields the control loop consumes
/// are modelled; the 64-byte wire size is accounted for in bandwidth
/// terms by the engine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BcnMessage {
    /// Destination reaction point (the sampled frame's source — the DA
    /// field).
    pub dst: SourceId,
    /// Originating congestion point (CPID field).
    pub cpid: CpId,
    /// The congestion measure `sigma` (FB field), in the congestion
    /// point's normalised units; positive means "speed up".
    pub sigma: f64,
}

impl BcnMessage {
    /// Whether this is a positive (rate-increase) notification.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sigma > 0.0
    }
}

/// An IEEE 802.3x PAUSE indication (sent when the queue exceeds the
/// severe-congestion threshold `q_sc`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauseFrame {
    /// How long the receiver must hold off transmission.
    pub hold: crate::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bcn_message_polarity() {
        let m = BcnMessage { dst: SourceId(0), cpid: CpId(1), sigma: 2.0 };
        assert!(m.is_positive());
        let m = BcnMessage { sigma: -2.0, ..m };
        assert!(!m.is_positive());
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SourceId(1));
        set.insert(SourceId(1));
        assert_eq!(set.len(), 1);
        assert!(SourceId(1) < SourceId(2));
    }

    #[test]
    fn data_frame_starts_untagged() {
        let f = DataFrame { src: SourceId(3), bits: 12_000.0, rrt: None };
        assert!(f.rrt.is_none());
    }
}
