//! Batched stability-query engine benchmark and equivalence gate.
//!
//! Exercises [`bcn::query::QueryBatch`] against the naive per-call
//! `exact_verdict` + `theorem1_required_buffer` loop on two workloads:
//!
//! * **uniform-cold** — every query a distinct configuration, with more
//!   distinct keys than the sharded propagator cache holds, so the
//!   cache keeps evicting and most propagators are built fresh;
//! * **zipf-hot** — a Zipf-skewed mix over a few hundred distinct
//!   configurations, the serving-path shape where batching collapses
//!   the work to the number of *distinct* questions.
//!
//! Three gates:
//!
//! 1. **Answer equality** — batched answers must match the naive loop
//!    bit for bit across the full benchmark workload (always gated).
//! 2. **Zero steady-state allocations** — with a warm workspace and a
//!    warm cache, the per-query verdict path performs no heap
//!    allocations (counted by this binary's own wrapping allocator;
//!    the library forbids unsafe code, but a bin target is its own
//!    crate root; always gated).
//! 3. **Throughput** — serial batched evaluation must be at least 3x
//!    the naive serial loop on the zipf-hot workload (skipped under
//!    `DCE_BCN_QUICK`, which also shrinks the workloads to smoke size).
//!
//! Per-thread QPS rows at 1/2/4/8 workers land in `BENCH_query.json`
//! under the usual results directory. Run release builds only:
//!
//! ```console
//! $ cargo run --release -p bench --bin query_engine
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use bcn::propagate::Propagator;
use bcn::query::{QueryBatch, StabilityAnswer, StabilityQuery};
use bcn::stability::{exact_verdict, exact_verdict_scratch, theorem1_required_buffer};
use bcn::BcnParams;
use bench::common::out_dir;

/// Serial batched-vs-naive throughput gate on the zipf-hot workload.
const MIN_HOT_SPEEDUP: f64 = 3.0;
/// Leg budget for every benchmark query.
const MAX_LEGS: usize = 48;
/// Worker counts for the QPS rows.
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

// --- counting allocator (bench binary only) -------------------------------

/// Counts allocation events (alloc + realloc) on top of the system
/// allocator. Used to prove the warm verdict path allocates nothing;
/// never enabled in the library, which forbids unsafe code.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System` unchanged; the counter is
// a relaxed atomic with no further side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn quick() -> bool {
    std::env::var_os("DCE_BCN_QUICK").is_some()
}

// --- deterministic workloads ----------------------------------------------

/// splitmix64: the deterministic PRNG behind the zipf sampler.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A unit-interval draw from the top 53 bits.
fn uniform01(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The `i`-th distinct benchmark configuration: a capacity and gain
/// perturbation of the test defaults, so every index derives a distinct
/// propagator key with comparable trace cost.
fn distinct_config(i: usize) -> BcnParams {
    BcnParams::test_defaults().with_capacity(1.0e6 + i as f64).with_gi(1.0 + (i % 7) as f64 * 0.25)
}

/// Every query distinct: `n` configurations visited once each.
fn uniform_workload(n: usize, offset: usize) -> Vec<StabilityQuery> {
    (0..n)
        .map(|i| StabilityQuery { params: distinct_config(offset + i), max_legs: MAX_LEGS })
        .collect()
}

/// `n` queries Zipf(s)-sampled over `distinct` configurations.
fn zipf_workload(n: usize, distinct: usize, s: f64) -> Vec<StabilityQuery> {
    let mut cdf = Vec::with_capacity(distinct);
    let mut acc = 0.0;
    for r in 0..distinct {
        acc += 1.0 / ((r + 1) as f64).powf(s);
        cdf.push(acc);
    }
    let total = acc;
    let mut state = 0x0dce_bc70_0000_0007u64;
    (0..n)
        .map(|_| {
            let u = uniform01(&mut state) * total;
            let rank = cdf.partition_point(|&c| c < u).min(distinct - 1);
            StabilityQuery { params: distinct_config(rank), max_legs: MAX_LEGS }
        })
        .collect()
}

// --- the two serving paths -------------------------------------------------

/// The pre-batching path: one `exact_verdict` call per query, fresh
/// allocations and a propagator-cache round trip every time.
fn naive_answers(queries: &[StabilityQuery]) -> Vec<StabilityAnswer> {
    queries
        .iter()
        .map(|q| {
            let v = exact_verdict(&q.params, q.max_legs);
            StabilityAnswer {
                strongly_stable: v.strongly_stable,
                required_buffer: theorem1_required_buffer(&q.params),
                max_x: v.max_x,
                min_x: v.min_x,
                legs: v.legs,
            }
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`.
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Bitwise answer comparison; returns the mismatch count.
fn mismatches(a: &[StabilityAnswer], b: &[StabilityAnswer]) -> usize {
    a.iter()
        .zip(b)
        .filter(|(x, y)| {
            x.strongly_stable != y.strongly_stable
                || x.required_buffer.to_bits() != y.required_buffer.to_bits()
                || x.max_x.to_bits() != y.max_x.to_bits()
                || x.min_x.to_bits() != y.min_x.to_bits()
                || x.legs != y.legs
        })
        .count()
}

/// Steady-state allocation count of the warm per-query verdict path:
/// workspace and cache warmed first, then `rounds` queries traced.
fn steady_state_allocations(queries: &[StabilityQuery], rounds: usize) -> u64 {
    let mut legs = Vec::new();
    let props: Vec<Propagator> =
        queries.iter().map(|q| Propagator::for_params(&q.params)).collect();
    let warm = |legs: &mut Vec<bcn::rounds::Leg>| {
        for (q, prop) in queries.iter().zip(&props).cycle().take(rounds) {
            black_box(exact_verdict_scratch(&q.params, prop, q.max_legs, legs));
        }
    };
    warm(&mut legs);
    let before = allocations();
    warm(&mut legs);
    allocations() - before
}

/// One workload's benchmark block: naive serial time, batched times at
/// each width, and the bitwise equivalence check.
struct WorkloadReport {
    name: &'static str,
    queries: usize,
    distinct: usize,
    groups: usize,
    naive_secs: f64,
    batch_secs: Vec<f64>,
    mismatches: usize,
}

fn run_workload(name: &'static str, queries: &[StabilityQuery], reps: usize) -> WorkloadReport {
    let batch = QueryBatch::new(queries);
    // Warm the propagator cache equally for both paths (the uniform
    // workload overflows the cache by construction, so it stays cold in
    // the steady state regardless).
    let batch_answers = batch.evaluate_in(1);
    let naive = naive_answers(queries);
    let bad = mismatches(&batch_answers, &naive);

    let naive_secs = best_of(reps, || naive_answers(queries));
    let batch_secs: Vec<f64> =
        THREAD_COUNTS.iter().map(|&t| best_of(reps, || batch.evaluate_in(t))).collect();
    WorkloadReport {
        name,
        queries: queries.len(),
        distinct: batch.distinct(),
        groups: batch.groups(),
        naive_secs,
        batch_secs,
        mismatches: bad,
    }
}

impl WorkloadReport {
    fn qps(&self, secs: f64) -> f64 {
        self.queries as f64 / secs
    }

    fn json(&self) -> String {
        let rows: Vec<String> = THREAD_COUNTS
            .iter()
            .zip(&self.batch_secs)
            .map(|(t, s)| {
                format!(
                    "{{\"threads\": {t}, \"secs\": {s:.6}, \"qps\": {:.0}, \
                     \"speedup_vs_naive\": {:.2}}}",
                    self.qps(*s),
                    self.naive_secs / s
                )
            })
            .collect();
        format!(
            "\"{}\": {{\"queries\": {}, \"distinct\": {}, \"groups\": {}, \
             \"naive_serial\": {{\"secs\": {:.6}, \"qps\": {:.0}}}, \
             \"batched\": [{}], \"mismatches\": {}}}",
            self.name,
            self.queries,
            self.distinct,
            self.groups,
            self.naive_secs,
            self.qps(self.naive_secs),
            rows.join(", "),
            self.mismatches,
        )
    }

    fn print(&self) {
        println!(
            "  {}: {} queries, {} distinct, {} propagator groups",
            self.name, self.queries, self.distinct, self.groups
        );
        println!(
            "    naive serial: {:.3} s ({:.0} queries/s)",
            self.naive_secs,
            self.qps(self.naive_secs)
        );
        for (t, s) in THREAD_COUNTS.iter().zip(&self.batch_secs) {
            println!(
                "    batched threads = {t}: {s:.3} s ({:.0} queries/s, {:.2}x naive)",
                self.qps(*s),
                self.naive_secs / s
            );
        }
    }
}

fn main() {
    let (uniform_n, zipf_n, zipf_distinct, reps) =
        if quick() { (1_024, 2_000, 64, 1) } else { (8_192, 50_000, 512, 3) };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    println!(
        "query engine benchmark: uniform {uniform_n}, zipf {zipf_n}/{zipf_distinct}, \
         best of {reps}, {cores} core(s)"
    );

    // Disjoint index ranges so the uniform sweep cannot pre-warm the
    // zipf configurations (or vice versa).
    let zipf = zipf_workload(zipf_n, zipf_distinct, 1.1);
    let uniform = uniform_workload(uniform_n, zipf_distinct);

    let cache0 = bcn::propagate::cache_stats();
    let hot = run_workload("zipf_hot", &zipf, reps);
    hot.print();
    let cold = run_workload("uniform_cold", &uniform, reps);
    cold.print();
    let cache_delta = bcn::propagate::cache_stats().delta_since(cache0);
    println!(
        "propagator cache: {} hits, {} misses, {} evictions",
        cache_delta.hits, cache_delta.misses, cache_delta.evictions
    );

    let steady_allocs = steady_state_allocations(&zipf[..zipf.len().min(1_000)], 1_000);
    println!("steady-state allocations over 1000 warm queries: {steady_allocs}");

    let hot_speedup = hot.naive_secs / hot.batch_secs[0];
    let total_mismatches = hot.mismatches + cold.mismatches;
    let note = "Batched serial speedup on zipf_hot comes from evaluating each distinct \
                configuration once (dedup + per-group propagator resolution + reused \
                per-worker leg workspaces); on single-core hardware (see \\\"cores\\\") \
                the multi-thread rows measure scheduling overhead, not scaling. \
                uniform_cold holds more distinct keys than the sharded cache's capacity, \
                so its steady state keeps building propagators. Steady-state allocations \
                count alloc+realloc events over 1000 warm-path queries.";
    let json = format!(
        "{{\n  \"reps\": {reps},\n  \"cores\": {cores},\n  \"max_legs\": {MAX_LEGS},\n  \
         \"workloads\": {{\n    {},\n    {}\n  }},\n  \
         \"hot_serial_speedup_vs_naive\": {hot_speedup:.2},\n  \
         \"steady_state_allocations\": {steady_allocs},\n  \
         \"propagator_cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}}},\n  \
         \"note\": \"{note}\"\n}}\n",
        hot.json(),
        cold.json(),
        cache_delta.hits,
        cache_delta.misses,
        cache_delta.evictions,
    );
    let out = out_dir();
    let path = out.join("BENCH_query.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("FAIL: could not write {}: {e}", path.display());
        std::process::exit(1);
    }
    println!("wrote {}", path.display());

    let mut failed = false;
    if total_mismatches > 0 {
        eprintln!("FAIL: {total_mismatches} batched answer(s) differ from the naive loop");
        failed = true;
    }
    if steady_allocs > 0 {
        eprintln!("FAIL: warm verdict path allocated {steady_allocs} time(s)");
        failed = true;
    }
    if !quick() && hot_speedup < MIN_HOT_SPEEDUP {
        eprintln!(
            "FAIL: serial batched speedup {hot_speedup:.2}x below the {MIN_HOT_SPEEDUP}x gate \
             on the zipf-hot workload"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
