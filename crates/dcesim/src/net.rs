//! Multi-hop DCE network engine: chained switches, per-link 802.3x
//! PAUSE with its head-of-line blocking, and end-to-end BCN.
//!
//! The paper's Introduction motivates BCN with exactly this scenario:
//! hop-by-hop PAUSE "cannot properly alleviate congestion ... because the
//! congestion can roll back from switch to switch, affecting flows that
//! do not contribute to the congestion, but happen to share a link with
//! flows that do." This engine makes the claim testable: build a small
//! topology with a congested leaf port and an innocent *victim* flow
//! sharing only the trunk, then compare PAUSE-only against end-to-end
//! BCN (see [`victim_topology`] and the `exp_pause_hol` experiment).
//!
//! The engine generalises [`crate::sim`]'s single-bottleneck model:
//! hosts connect to switches over pause-able access links, switches have
//! per-output-port FIFO queues, each port may host a BCN congestion
//! point, and PAUSE propagates upstream link by link with its
//! propagation delay.
//!
//! Besides plain 802.3x PAUSE, the engine implements **priority flow
//! control** (PFC, 802.1Qbb — the "priority-flow control" extension the
//! paper's introduction lists among the DCE building blocks): frames
//! carry a priority class, ports queue per class (round-robin service),
//! and PAUSE can be asserted per class, so a congested storage class
//! cannot stall an innocent class sharing the links — the cross-class
//! half of the head-of-line-blocking problem (BCN remains necessary for
//! victims *within* the congested class).

use std::collections::VecDeque;

use telemetry::{FaultClass, SeriesKind, Telemetry};

use crate::cp::{CongestionPoint, CpConfig};
use crate::error::ConfigError;
use crate::faults::{FaultConfig, FaultCounts, FaultPlan, FeedbackFate};
use crate::frame::{BcnMessage, CpId, DataFrame, SourceId};
use crate::metrics::TimeSeries;
use crate::rp::{ReactionPoint, RpConfig};
use crate::sched::{EventQueue, Scheduler};
use crate::time::{Duration, Time};

/// Number of 802.1p priority classes the engine models.
pub const N_PRIORITIES: usize = 8;

/// Where a link terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A host (source or sink) by index.
    Host(usize),
    /// A switch by index (ingress side; egress is via ports/links).
    Switch(usize),
}

/// One unidirectional link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// Transmitting side.
    pub from: Endpoint,
    /// Receiving side.
    pub to: Endpoint,
    /// Capacity in bit/s (serialization happens at the transmitter).
    pub capacity: f64,
    /// Propagation delay.
    pub delay: Duration,
}

/// One switch (output-queued: each output port has its own buffer).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchSpec {
    /// Per-output-port buffer (bits).
    pub buffer_bits: f64,
    /// PAUSE threshold on any single port's backlog (bits).
    pub qsc_bits: f64,
    /// Routing: for each destination host, the index (into the global
    /// link list) of the outgoing link to use.
    pub routes: Vec<(usize, usize)>,
    /// BCN congestion points, one per outgoing link that should monitor
    /// congestion: `(link index, config)`.
    pub cps: Vec<(usize, CpConfig)>,
}

/// A flow: a rate-regulated source host sending to a destination host.
#[derive(Debug, Clone, PartialEq)]
pub struct NetFlow {
    /// Source host index.
    pub src_host: usize,
    /// Destination host index.
    pub dst_host: usize,
    /// Initial rate (bit/s).
    pub initial_rate: f64,
    /// Reaction-point configuration; `None` = fixed-rate (unmanaged)
    /// source.
    pub rp: Option<RpConfig>,
    /// 802.1p priority class (0..8); classes are queued separately and
    /// paused separately under PFC.
    pub priority: u8,
}

/// Whether per-link PAUSE is active and how long one assertion holds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauseConfig {
    /// Enables PAUSE generation at switches.
    pub enabled: bool,
    /// Transmission hold per PAUSE frame.
    pub hold: Duration,
    /// Priority flow control (802.1Qbb): pause only the congested
    /// priority class instead of the whole link.
    pub per_priority: bool,
}

/// Full network configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetConfig {
    /// Number of hosts (indices `0..hosts`).
    pub hosts: usize,
    /// The switches.
    pub switches: Vec<SwitchSpec>,
    /// The links (global indices; switch routes refer to these).
    pub links: Vec<LinkSpec>,
    /// The flows.
    pub flows: Vec<NetFlow>,
    /// Data frame size (bits).
    pub frame_bits: f64,
    /// Simulated duration.
    pub t_end: Time,
    /// Metrics sampling interval.
    pub record_interval: Duration,
    /// PAUSE behaviour.
    pub pause: PauseConfig,
    /// Fault injection ([`FaultConfig::none`] leaves every run
    /// byte-identical to the fault-free engine).
    pub faults: FaultConfig,
    /// Which event-queue backend drives the run (bit-identical results;
    /// see [`Scheduler`]).
    pub scheduler: Scheduler,
}

/// Per-flow outcome.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FlowStats {
    /// Bits delivered to the flow's destination.
    pub delivered_bits: f64,
    /// Frames dropped anywhere along the path.
    pub dropped_frames: u64,
    /// Final regulator rate (bit/s).
    pub final_rate: f64,
}

/// Outcome of a network run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    /// Per-flow statistics (same order as the config's flows).
    pub flows: Vec<FlowStats>,
    /// Per-switch shared-buffer occupancy over time.
    pub switch_queues: Vec<TimeSeries>,
    /// PAUSE assertions per link (indexed like the config's links).
    pub pause_counts: Vec<u64>,
    /// Total BCN messages delivered.
    pub feedback_messages: u64,
    /// Injected-fault tallies (all zero for a fault-free run).
    pub faults: FaultCounts,
    /// The telemetry shard, when a sink was attached (see
    /// [`NetSim::with_telemetry_sink`]); per-switch queue depths and
    /// per-flow rates land in its entity-keyed time series, PAUSE
    /// assertions become causal spans.
    pub telemetry: Option<Telemetry>,
}

impl NetReport {
    /// Throughput of flow `i` in bit/s over `duration` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `duration` is non-positive.
    #[must_use]
    pub fn throughput(&self, i: usize, duration: f64) -> f64 {
        assert!(duration > 0.0);
        self.flows[i].delivered_bits / duration
    }
}

#[derive(Debug, Clone)]
struct NetFrame {
    flow: usize,
    bits: f64,
    rrt: Option<CpId>,
    priority: u8,
}

#[derive(Debug, Clone)]
enum Ev {
    HostSend(usize),
    Arrive { link: usize, frame: NetFrame },
    PortTx { switch: usize, port: usize },
    Feedback { flow: usize, msg: BcnMessage },
    PauseAt { link: usize, priority: Option<u8>, until: Time },
    Record,
}

struct Port {
    link: usize,
    /// One FIFO per priority class, served round-robin.
    queues: [VecDeque<NetFrame>; N_PRIORITIES],
    /// Backlog per priority class (bits).
    backlog_by_class: [f64; N_PRIORITIES],
    /// Round-robin pointer over the classes.
    rr_next: usize,
    busy: bool,
    cp: Option<CongestionPoint>,
}

impl Port {
    fn backlog_bits(&self) -> f64 {
        self.backlog_by_class.iter().sum()
    }
}

struct SwitchState {
    spec: SwitchSpec,
    ports: Vec<Port>,
    last_pause: Option<Time>,
}

impl SwitchState {
    fn total_backlog(&self) -> f64 {
        self.ports.iter().map(Port::backlog_bits).sum()
    }
}

/// The multi-hop simulation engine.
pub struct NetSim {
    cfg: NetConfig,
    events: EventQueue<Ev>,
    now: Time,
    switches: Vec<SwitchState>,
    /// Number of hosts (stride of `route_table`).
    n_hosts: usize,
    /// Flat next-hop table: `route_table[si * n_hosts + dst]` is the
    /// output *port* index on switch `si` for destination host `dst`
    /// (`NO_ROUTE` = none). Built once from the per-switch route lists;
    /// the per-frame path is a single indexed load instead of the old
    /// `routes.iter().find(...)` linear scan.
    route_table: Vec<u32>,
    /// CSR layout of the links terminating at each switch: switch `si`
    /// owns `incoming_links[incoming_off[si]..incoming_off[si + 1]]`.
    /// One flat allocation instead of the old `Vec<Vec<usize>>` (hoisted
    /// out of the PAUSE path, which used to collect this per assertion).
    incoming_off: Vec<u32>,
    incoming_links: Vec<u32>,
    /// Pause state per link and priority class, read by the transmitter
    /// (plain PAUSE sets every class).
    link_paused_until: Vec<[Time; N_PRIORITIES]>,
    rps: Vec<Option<ReactionPoint>>,
    flow_rates_fixed: Vec<f64>,
    stats: Vec<FlowStats>,
    switch_queues: Vec<TimeSeries>,
    pause_counts: Vec<u64>,
    feedback_messages: u64,
    /// Outgoing access link per host (computed from the link list).
    host_uplink: Vec<Option<usize>>,
    /// Path delay from each flow's congestion points back to its source:
    /// approximated as the forward path delay (symmetric routes).
    feedback_delay: Vec<Duration>,
    /// Per-flow LCG state for pacing jitter (see `on_host_send`).
    jitter_state: Vec<u64>,
    faults: FaultPlan,
    fault_scratch: Vec<FaultClass>,
    telemetry: Option<Telemetry>,
}

impl std::fmt::Debug for NetSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetSim")
            .field("now", &self.now)
            .field("events_pending", &self.events.len())
            .finish_non_exhaustive()
    }
}

/// Sentinel in [`NetSim`]'s flat next-hop table: no route.
const NO_ROUTE: u32 = u32::MAX;

impl NetSim {
    /// Builds the engine.
    ///
    /// # Panics
    ///
    /// Panics where [`try_new`](Self::try_new) errors.
    #[must_use]
    pub fn new(cfg: NetConfig) -> Self {
        match Self::try_new(cfg) {
            Ok(sim) => sim,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the engine, validating the configuration: every link
    /// endpoint must exist, every switch may only route over links it
    /// owns, and — so a misrouted flow fails here instead of silently
    /// dropping every frame at forward time — every flow's path must
    /// actually reach its destination host, loop-free.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending flow, switch, or
    /// link on any of the inconsistencies above.
    pub fn try_new(mut cfg: NetConfig) -> Result<Self, ConfigError> {
        cfg.faults.validate()?;
        let n_switches = cfg.switches.len();
        for (i, l) in cfg.links.iter().enumerate() {
            for (end, name) in [(l.from, "from"), (l.to, "to")] {
                match end {
                    Endpoint::Host(h) if h >= cfg.hosts => {
                        return Err(ConfigError::new(
                            "links",
                            format!("link {i} {name} unknown host {h} (hosts: {})", cfg.hosts),
                        ));
                    }
                    Endpoint::Switch(s) if s >= n_switches => {
                        return Err(ConfigError::new(
                            "links",
                            format!("link {i} {name} unknown switch {s} (switches: {n_switches})"),
                        ));
                    }
                    _ => {}
                }
            }
        }
        let mut host_uplink = vec![None; cfg.hosts];
        for (i, l) in cfg.links.iter().enumerate() {
            if let Endpoint::Host(h) = l.from {
                host_uplink[h] = Some(i);
            }
        }
        // Everything that needed the full config is done; move the
        // switch specs out so each `SwitchState` owns its spec without
        // the old per-run `spec.clone()`.
        let switches: Vec<SwitchState> = std::mem::take(&mut cfg.switches)
            .into_iter()
            .enumerate()
            .map(|(si, spec)| {
                let ports: Vec<Port> = cfg
                    .links
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.from == Endpoint::Switch(si))
                    .map(|(li, _)| {
                        let cp = spec
                            .cps
                            .iter()
                            .find(|(link, _)| *link == li)
                            .map(|(_, c)| CongestionPoint::new(*c));
                        Port {
                            link: li,
                            queues: std::array::from_fn(|_| VecDeque::new()),
                            backlog_by_class: [0.0; N_PRIORITIES],
                            rr_next: 0,
                            busy: false,
                            cp,
                        }
                    })
                    .collect();
                SwitchState { spec, ports, last_pause: None }
            })
            .collect();
        // Flat next-hop table (first match wins, like the old linear
        // scan over the route list).
        let mut route_table = vec![NO_ROUTE; n_switches * cfg.hosts];
        for (si, sw) in switches.iter().enumerate() {
            for &(dst, link) in &sw.spec.routes {
                if dst >= cfg.hosts {
                    return Err(ConfigError::new(
                        "switches",
                        format!("switch {si} routes unknown host {dst} (hosts: {})", cfg.hosts),
                    ));
                }
                let Some(port) = sw.ports.iter().position(|p| p.link == link) else {
                    return Err(ConfigError::new(
                        "switches",
                        format!("switch {si} routes via link {link} it does not own"),
                    ));
                };
                let slot = &mut route_table[si * cfg.hosts + dst];
                if *slot == NO_ROUTE {
                    *slot = port as u32;
                }
            }
        }
        // CSR of incoming links per switch.
        let mut incoming_off = vec![0u32; n_switches + 1];
        for l in &cfg.links {
            if let Endpoint::Switch(si) = l.to {
                incoming_off[si + 1] += 1;
            }
        }
        for si in 0..n_switches {
            incoming_off[si + 1] += incoming_off[si];
        }
        let mut incoming_links = vec![0u32; incoming_off[n_switches] as usize];
        let mut cursor: Vec<u32> = incoming_off[..n_switches].to_vec();
        for (li, l) in cfg.links.iter().enumerate() {
            if let Endpoint::Switch(si) = l.to {
                incoming_links[cursor[si] as usize] = li as u32;
                cursor[si] += 1;
            }
        }
        let mut rps = Vec::with_capacity(cfg.flows.len());
        let mut fixed = Vec::with_capacity(cfg.flows.len());
        let mut feedback_delay = Vec::with_capacity(cfg.flows.len());
        for (fi, flow) in cfg.flows.iter().enumerate() {
            if flow.src_host >= cfg.hosts || flow.dst_host >= cfg.hosts {
                return Err(ConfigError::new(
                    "flows",
                    format!(
                        "flow {fi} references host {} -> {} outside 0..{}",
                        flow.src_host, flow.dst_host, cfg.hosts
                    ),
                ));
            }
            if host_uplink[flow.src_host].is_none() {
                return Err(ConfigError::new(
                    "flows",
                    format!("flow {fi} source host {} has no uplink", flow.src_host),
                ));
            }
            rps.push(flow.rp.map(|c| ReactionPoint::new(c, flow.initial_rate)));
            fixed.push(flow.initial_rate);
            feedback_delay.push(walk_path(
                &cfg,
                &switches,
                &route_table,
                &host_uplink,
                fi,
                flow.src_host,
                flow.dst_host,
            )?);
        }

        let n_flows = cfg.flows.len();
        let n_links = cfg.links.len();
        let mut sim = Self {
            events: EventQueue::new(cfg.scheduler),
            now: Time::ZERO,
            switches,
            n_hosts: cfg.hosts,
            route_table,
            incoming_off,
            incoming_links,
            link_paused_until: vec![[Time::ZERO; N_PRIORITIES]; n_links],
            rps,
            flow_rates_fixed: fixed,
            stats: vec![FlowStats::default(); n_flows],
            switch_queues: vec![TimeSeries::new(); n_switches],
            pause_counts: vec![0; n_links],
            feedback_messages: 0,
            host_uplink,
            feedback_delay,
            jitter_state: (0..n_flows).map(|i| 0x9E37_79B9_7F4A_7C15 ^ (i as u64)).collect(),
            faults: FaultPlan::new(cfg.faults.clone()),
            fault_scratch: Vec::new(),
            telemetry: None,
            cfg,
        };
        let records =
            (sim.cfg.t_end.as_secs() / sim.cfg.record_interval.as_secs()).ceil() as usize + 2;
        for series in &mut sim.switch_queues {
            series.reserve(records);
        }
        for fi in 0..n_flows {
            sim.schedule(Time::from_nanos(fi as u64 + 1), Ev::HostSend(fi));
        }
        sim.schedule(Time::ZERO, Ev::Record);
        Ok(sim)
    }

    /// Attaches a telemetry sink; its shard comes back in the report.
    #[must_use]
    pub fn with_telemetry_sink(mut self, tel: Telemetry) -> Self {
        self.telemetry = Some(tel);
        self
    }

    /// Detaches the telemetry sink mid-run — the flight recorder a
    /// supervised batch salvages from a panicked or demoted seed. The
    /// eventual report (if any) carries `None` afterwards.
    pub fn take_telemetry(&mut self) -> Option<Telemetry> {
        self.telemetry.take()
    }

    fn schedule(&mut self, time: Time, ev: Ev) {
        self.events.schedule(time, ev);
    }

    fn flow_rate(&self, fi: usize) -> f64 {
        match &self.rps[fi] {
            Some(rp) => rp.rate(),
            None => self.flow_rates_fixed[fi],
        }
    }

    /// Runs to completion.
    #[must_use]
    pub fn run(mut self) -> NetReport {
        while self.step() {}
        self.finish()
    }

    /// Advances by one event; `false` once the horizon is reached or the
    /// queue is drained. Exposed so supervised drivers (batch watchdogs,
    /// allocation gates) can interleave checks with the event loop.
    pub fn step(&mut self) -> bool {
        let Some((time, ev)) = self.events.pop() else { return false };
        if time > self.cfg.t_end {
            return false;
        }
        self.now = time;
        self.dispatch(ev);
        true
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Events dispatched so far (the supervision budget currency).
    #[must_use]
    pub fn events_popped(&self) -> u64 {
        self.events.stats().popped
    }

    /// Finalises the report after [`step`](Self::step) returns `false`.
    #[must_use]
    pub fn finish(mut self) -> NetReport {
        for (fi, stat) in self.stats.iter_mut().enumerate() {
            stat.final_rate = match &self.rps[fi] {
                Some(rp) => rp.rate(),
                None => self.flow_rates_fixed[fi],
            };
        }
        if let Some(tel) = self.telemetry.as_mut() {
            let st = self.events.stats();
            tel.scheduler_stats(
                st.scheduled,
                st.popped,
                st.cascades,
                st.overflow_parked,
                st.max_pending,
            );
        }
        NetReport {
            flows: self.stats,
            switch_queues: self.switch_queues,
            pause_counts: self.pause_counts,
            feedback_messages: self.feedback_messages,
            faults: self.faults.take_counts(),
            telemetry: self.telemetry.take(),
        }
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::HostSend(fi) => self.on_host_send(fi),
            Ev::Arrive { link, frame } => self.on_arrive(link, frame),
            Ev::PortTx { switch, port } => self.on_port_tx(switch, port),
            Ev::Feedback { flow, msg } => {
                // A corrupted DA can point outside the flow set; such
                // misaddressed feedback dies on delivery.
                if let Some(Some(rp)) = self.rps.get_mut(flow) {
                    rp.on_bcn(&msg);
                    self.feedback_messages += 1;
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.bcn_message(self.now.as_secs(), msg.sigma, flow as u32);
                    }
                }
            }
            Ev::PauseAt { link, priority, until } => match priority {
                Some(cls) => {
                    let slot = &mut self.link_paused_until[link][cls as usize];
                    *slot = (*slot).max(until);
                }
                None => {
                    for slot in &mut self.link_paused_until[link] {
                        *slot = (*slot).max(until);
                    }
                }
            },
            Ev::Record => {
                for (si, sw) in self.switches.iter().enumerate() {
                    let backlog = sw.total_backlog();
                    self.switch_queues[si].push(self.now, backlog);
                    if let Some(tel) = self.telemetry.as_mut() {
                        tel.queue_sample_entity(self.now.as_secs(), si as u32, backlog);
                    }
                }
                if self.telemetry.is_some() {
                    for fi in 0..self.cfg.flows.len() {
                        let rate = self.flow_rate(fi);
                        let now = self.now.as_secs();
                        if let Some(tel) = self.telemetry.as_mut() {
                            tel.series_sample(SeriesKind::FlowRate, fi as u32, now, rate);
                        }
                    }
                }
                if self.now + self.cfg.record_interval <= self.cfg.t_end {
                    self.schedule(self.now + self.cfg.record_interval, Ev::Record);
                }
            }
        }
    }

    fn on_host_send(&mut self, fi: usize) {
        let flow = &self.cfg.flows[fi];
        let cls = flow.priority as usize;
        let uplink = self.host_uplink[flow.src_host].expect("validated in new");
        if self.link_paused_until[uplink][cls] > self.now {
            let resume = self.link_paused_until[uplink][cls];
            self.schedule(resume, Ev::HostSend(fi));
            return;
        }
        let rrt = self.rps[fi].as_ref().and_then(ReactionPoint::associated_cp);
        let frame = NetFrame { flow: fi, bits: self.cfg.frame_bits, rrt, priority: flow.priority };
        let delay = Duration::serialization(self.cfg.frame_bits, self.cfg.links[uplink].capacity)
            + self.cfg.links[uplink].delay;
        self.schedule(self.now + delay, Ev::Arrive { link: uplink, frame });
        // Deterministic +/-2% pacing jitter (per-flow LCG) breaks the
        // phase-locking a perfectly periodic ensemble would suffer at a
        // full FIFO (where the same flow's frame would be the one dropped
        // every cycle) — the discrete analogue of real NIC clock skew.
        let jitter = {
            let st = &mut self.jitter_state[fi];
            *st =
                st.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1_442_695_040_888_963_407);
            0.98 + 0.04 * ((*st >> 11) as f64 / (1u64 << 53) as f64)
        };
        let gap_secs = self.cfg.frame_bits / self.flow_rate(fi).max(1.0) * jitter;
        self.schedule(self.now + Duration::from_secs(gap_secs), Ev::HostSend(fi));
    }

    fn on_arrive(&mut self, link: usize, frame: NetFrame) {
        // Per-link wire loss: a multi-hop frame faces one draw per hop.
        if self.faults.is_active() && self.faults.data_frame_lost() {
            if let Some(tel) = self.telemetry.as_mut() {
                tel.fault_injected(self.now.as_secs(), FaultClass::DataLoss, link as u32);
            }
            return;
        }
        match self.cfg.links[link].to {
            Endpoint::Host(h) => {
                if h == self.cfg.flows[frame.flow].dst_host {
                    self.stats[frame.flow].delivered_bits += frame.bits;
                }
            }
            Endpoint::Switch(si) => self.switch_ingress(si, frame),
        }
    }

    fn switch_ingress(&mut self, si: usize, frame: NetFrame) {
        let dst = self.cfg.flows[frame.flow].dst_host;
        // One indexed load; construction-time validation guarantees a
        // route exists for every flow's destination, but corrupted
        // feedback cannot reach here (data frames only), so the sentinel
        // check is pure defence in depth.
        let pi = self.route_table[si * self.n_hosts + dst];
        if pi == NO_ROUTE {
            self.stats[frame.flow].dropped_frames += 1;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.frame_dropped(self.now.as_secs(), frame.flow as u32);
            }
            return;
        }
        let pi = pi as usize;
        if self.switches[si].ports[pi].backlog_bits() + frame.bits
            > self.switches[si].spec.buffer_bits
        {
            self.stats[frame.flow].dropped_frames += 1;
            if let Some(tel) = self.telemetry.as_mut() {
                tel.frame_dropped(self.now.as_secs(), frame.flow as u32);
            }
            return;
        }
        // Enqueue into the frame's priority class.
        let cls = frame.priority as usize;
        let port_backlog;
        let class_backlog;
        let mut feedback = None;
        {
            let port = &mut self.switches[si].ports[pi];
            port.backlog_by_class[cls] += frame.bits;
            port_backlog = port.backlog_bits();
            class_backlog = port.backlog_by_class[cls];
            let df =
                DataFrame { src: SourceId(frame.flow as u32), bits: frame.bits, rrt: frame.rrt };
            if let Some(cp) = &mut port.cp {
                feedback = cp.on_arrival(&df, port_backlog);
            }
            port.queues[cls].push_back(frame);
        }
        if let Some(msg) = feedback {
            let mut injected = std::mem::take(&mut self.fault_scratch);
            let fate = self.faults.feedback_fate_into(&msg, &mut injected);
            injected.clear();
            self.fault_scratch = injected;
            if let FeedbackFate::Deliver { msg, extra } = fate {
                let flow = msg.dst.0 as usize;
                // Corruption can re-address the message beyond the flow
                // set; keep it schedulable and let delivery discard it.
                let delay = self.feedback_delay.get(flow).copied().unwrap_or(Duration::ZERO);
                self.schedule(self.now + delay + extra, Ev::Feedback { flow, msg });
            }
        }
        // PAUSE when the relevant backlog crosses the threshold: under
        // PFC the congested class's backlog pauses only that class.
        if self.cfg.pause.enabled {
            if self.cfg.pause.per_priority {
                if class_backlog > self.switches[si].spec.qsc_bits {
                    self.assert_pause(si, Some(cls as u8));
                }
            } else if port_backlog > self.switches[si].spec.qsc_bits {
                self.assert_pause(si, None);
            }
        }
        // Kick the port if idle.
        if !self.switches[si].ports[pi].busy {
            self.switches[si].ports[pi].busy = true;
            self.schedule(self.now, Ev::PortTx { switch: si, port: pi });
        }
    }

    fn assert_pause(&mut self, si: usize, priority: Option<u8>) {
        let can_fire = match self.switches[si].last_pause {
            Some(t) => self.now.saturating_sub(t) >= self.cfg.pause.hold,
            None => true,
        };
        if !can_fire {
            return;
        }
        self.switches[si].last_pause = Some(self.now);
        // Pause every link that terminates at this switch (precomputed
        // in `new` — this path allocates nothing).
        let (hold, _stormed) = self.faults.pause_hold(self.cfg.pause.hold);
        for k in self.incoming_off[si] as usize..self.incoming_off[si + 1] as usize {
            let li = self.incoming_links[k] as usize;
            self.pause_counts[li] += 1;
            let deliver = self.now + self.cfg.links[li].delay;
            let until = deliver + hold;
            // Each paused link gets its own PAUSE-episode span, so an
            // upstream cascade renders as a burst of sibling bands.
            if let Some(tel) = self.telemetry.as_mut() {
                tel.pause(deliver.as_secs(), until.as_secs(), li as u32);
            }
            self.schedule(deliver, Ev::PauseAt { link: li, priority, until });
        }
    }

    fn on_port_tx(&mut self, si: usize, pi: usize) {
        let link = self.switches[si].ports[pi].link;
        // Round-robin over classes that have frames and are not paused.
        let paused = self.link_paused_until[link];
        let frame = {
            let port = &mut self.switches[si].ports[pi];
            let mut chosen = None;
            let mut earliest_resume: Option<Time> = None;
            for off in 0..N_PRIORITIES {
                let cls = (port.rr_next + off) % N_PRIORITIES;
                if port.queues[cls].is_empty() {
                    continue;
                }
                if paused[cls] > self.now {
                    earliest_resume = Some(match earliest_resume {
                        Some(t) => t.min(paused[cls]),
                        None => paused[cls],
                    });
                    continue;
                }
                chosen = Some(cls);
                break;
            }
            match chosen {
                Some(cls) => {
                    port.rr_next = (cls + 1) % N_PRIORITIES;
                    port.queues[cls].pop_front()
                }
                None => {
                    if let Some(resume) = earliest_resume {
                        // Everything pending is paused: retry at resume.
                        self.schedule(resume, Ev::PortTx { switch: si, port: pi });
                        return;
                    }
                    port.busy = false;
                    return;
                }
            }
        };
        let Some(frame) = frame else {
            self.switches[si].ports[pi].busy = false;
            return;
        };
        let bits = frame.bits;
        self.switches[si].ports[pi].backlog_by_class[frame.priority as usize] -= bits;
        if let Some(cp) = &mut self.switches[si].ports[pi].cp {
            cp.on_departure(bits);
        }
        // Link flaps defer the transmission start past the down window.
        let mut start = self.now;
        if self.faults.is_active() {
            if let Some(up) = self.faults.link_up_at(self.now) {
                start = up;
            }
        }
        let ser = Duration::serialization(bits, self.cfg.links[link].capacity);
        let delay = ser + self.cfg.links[link].delay;
        self.schedule(start + delay, Ev::Arrive { link, frame });
        self.schedule(start + ser, Ev::PortTx { switch: si, port: pi });
    }
}

/// Walks a flow's forward path through the next-hop tables, validating
/// it delivers to `dst_host` within a loop-free number of hops, and
/// returns the summed link delay (used as the feedback delay
/// approximation).
fn walk_path(
    cfg: &NetConfig,
    switches: &[SwitchState],
    route_table: &[u32],
    host_uplink: &[Option<usize>],
    fi: usize,
    src_host: usize,
    dst_host: usize,
) -> Result<Duration, ConfigError> {
    let uplink = host_uplink[src_host].expect("caller checked the source uplink");
    let mut delay = cfg.links[uplink].delay;
    let mut at = cfg.links[uplink].to;
    for _ in 0..switches.len() + 1 {
        match at {
            Endpoint::Host(h) => {
                if h == dst_host {
                    return Ok(delay);
                }
                return Err(ConfigError::new(
                    "flows",
                    format!("flow {fi} ({src_host} -> {dst_host}) is routed to host {h} instead"),
                ));
            }
            Endpoint::Switch(si) => {
                let port = route_table[si * cfg.hosts + dst_host];
                if port == NO_ROUTE {
                    return Err(ConfigError::new(
                        "flows",
                        format!(
                            "flow {fi} ({src_host} -> {dst_host}) is unroutable: \
                             switch {si} has no route to host {dst_host}"
                        ),
                    ));
                }
                let link = switches[si].ports[port as usize].link;
                delay = delay + cfg.links[link].delay;
                at = cfg.links[link].to;
            }
        }
    }
    Err(ConfigError::new(
        "flows",
        format!("flow {fi} ({src_host} -> {dst_host}) never reaches its destination: routing loop"),
    ))
}

/// Builds the paper-Introduction victim scenario:
///
/// ```text
/// culprits c_0..c_{n-1} ─┐
///                        ├─ S1 ──trunk──> S2 ──bottleneck──> sink_c
/// victim v ──────────────┘                 └────victim_link──> sink_v
/// ```
///
/// Culprits all send to `sink_c` behind the quarter-capacity bottleneck
/// (offering twice its capacity but only half the trunk's, so the trunk
/// itself is uncongested); the victim sends to `sink_v` over an
/// uncongested port but shares the trunk. Returns
/// `(config, victim flow index)`.
///
/// `bcn` supplies the congestion-point/reaction-point pair to install on
/// the bottleneck port and culprit/victim sources; `None` runs
/// unmanaged sources (PAUSE-only or drop-tail per `pause`).
#[must_use]
pub fn victim_topology(
    n_culprits: usize,
    trunk_capacity: f64,
    frame_bits: f64,
    prop: Duration,
    t_end: f64,
    pause: PauseConfig,
    bcn: Option<(CpConfig, RpConfig)>,
) -> (NetConfig, usize) {
    let n_hosts = n_culprits + 3; // culprits + victim + two sinks
    let victim_host = n_culprits;
    let sink_c = n_culprits + 1;
    let sink_v = n_culprits + 2;

    let mut links = Vec::new();
    // Access links (hosts -> S1), generous capacity.
    for h in 0..=n_culprits {
        links.push(LinkSpec {
            from: Endpoint::Host(h),
            to: Endpoint::Switch(0),
            capacity: 4.0 * trunk_capacity,
            delay: prop,
        });
    }
    // Trunk S1 -> S2.
    let trunk = links.len();
    links.push(LinkSpec {
        from: Endpoint::Switch(0),
        to: Endpoint::Switch(1),
        capacity: trunk_capacity,
        delay: prop,
    });
    // Bottleneck S2 -> sink_c at a quarter of the trunk.
    let bottleneck = links.len();
    links.push(LinkSpec {
        from: Endpoint::Switch(1),
        to: Endpoint::Host(sink_c),
        capacity: 0.25 * trunk_capacity,
        delay: prop,
    });
    // Victim egress S2 -> sink_v at full trunk rate.
    let victim_link = links.len();
    links.push(LinkSpec {
        from: Endpoint::Switch(1),
        to: Endpoint::Host(sink_v),
        capacity: trunk_capacity,
        delay: prop,
    });

    let buffer = 60.0 * frame_bits;
    let s1 = SwitchSpec {
        buffer_bits: buffer,
        qsc_bits: 0.6 * buffer,
        routes: vec![(sink_c, trunk), (sink_v, trunk)],
        cps: Vec::new(),
    };
    let s2_cps = match &bcn {
        Some((cp, _)) => vec![(bottleneck, CpConfig { cpid: CpId(2), ..*cp })],
        None => Vec::new(),
    };
    let s2 = SwitchSpec {
        buffer_bits: buffer,
        qsc_bits: 0.6 * buffer,
        routes: vec![(sink_c, bottleneck), (sink_v, victim_link)],
        cps: s2_cps,
    };

    let mut flows = Vec::new();
    for h in 0..n_culprits {
        flows.push(NetFlow {
            src_host: h,
            dst_host: sink_c,
            // Culprits collectively offer half the trunk: 2x the
            // bottleneck, but leaving the trunk itself uncongested.
            initial_rate: 0.5 * trunk_capacity / n_culprits as f64,
            rp: bcn.as_ref().map(|(_, rp)| *rp),
            priority: 0,
        });
    }
    let victim = flows.len();
    flows.push(NetFlow {
        src_host: victim_host,
        dst_host: sink_v,
        initial_rate: 0.25 * trunk_capacity,
        rp: bcn.as_ref().map(|(_, rp)| *rp),
        priority: 0,
    });

    let cfg = NetConfig {
        hosts: n_hosts,
        switches: vec![s1, s2],
        links,
        flows,
        frame_bits,
        t_end: Time::from_secs(t_end),
        record_interval: Duration::from_secs(t_end / 2000.0),
        pause,
        faults: FaultConfig::none(),
        scheduler: Scheduler::default(),
    };
    (cfg, victim)
}

/// Builds a three-switch chain that lets PAUSE cascade two hops
/// upstream:
///
/// ```text
/// culprits ──┐
///            ├─ S0 ──trunk0── S1 ──trunk1── S2 ──bottleneck──> sink_c
/// victim ────┘                                └──victim_link──> sink_v
/// ```
///
/// Culprits and the victim all enter at S0, two switches away from the
/// hotspot (S2's quarter-rate leaf port). Under PAUSE the congestion
/// rolls back hop by hop — S2 pauses trunk1, S1's backlog pauses
/// trunk0, S0's backlog pauses every access link — and the victim
/// starves despite its own egress being idle. Returns `(config, victim
/// flow index)`.
#[must_use]
pub fn parking_lot_topology(
    n_culprits: usize,
    trunk_capacity: f64,
    frame_bits: f64,
    prop: Duration,
    t_end: f64,
    pause: PauseConfig,
    bcn: Option<(CpConfig, RpConfig)>,
) -> (NetConfig, usize) {
    let deep_victim_host = n_culprits;
    let sink_c = n_culprits + 1;
    let sink_v = n_culprits + 2;
    let n_hosts = n_culprits + 3;

    let mut links = Vec::new();
    // Culprits and the victim all enter at S0.
    for h in 0..=n_culprits {
        links.push(LinkSpec {
            from: Endpoint::Host(h),
            to: Endpoint::Switch(0),
            capacity: 4.0 * trunk_capacity,
            delay: prop,
        });
    }
    let _ = deep_victim_host;
    let trunk0 = links.len();
    links.push(LinkSpec {
        from: Endpoint::Switch(0),
        to: Endpoint::Switch(1),
        capacity: trunk_capacity,
        delay: prop,
    });
    let trunk1 = links.len();
    links.push(LinkSpec {
        from: Endpoint::Switch(1),
        to: Endpoint::Switch(2),
        capacity: trunk_capacity,
        delay: prop,
    });
    let bottleneck = links.len();
    links.push(LinkSpec {
        from: Endpoint::Switch(2),
        to: Endpoint::Host(sink_c),
        capacity: 0.25 * trunk_capacity,
        delay: prop,
    });
    let victim_link = links.len();
    links.push(LinkSpec {
        from: Endpoint::Switch(2),
        to: Endpoint::Host(sink_v),
        capacity: trunk_capacity,
        delay: prop,
    });

    let buffer = 60.0 * frame_bits;
    let mk_switch = |routes: Vec<(usize, usize)>, cps: Vec<(usize, CpConfig)>| SwitchSpec {
        buffer_bits: buffer,
        qsc_bits: 0.6 * buffer,
        routes,
        cps,
    };
    let s0 = mk_switch(vec![(sink_v, trunk0), (sink_c, trunk0)], Vec::new());
    let s1 = mk_switch(vec![(sink_v, trunk1), (sink_c, trunk1)], Vec::new());
    let s2_cps = match &bcn {
        Some((cp, _)) => vec![(bottleneck, CpConfig { cpid: CpId(3), ..*cp })],
        None => Vec::new(),
    };
    let s2 = mk_switch(vec![(sink_c, bottleneck), (sink_v, victim_link)], s2_cps);

    let mut flows = Vec::new();
    for h in 0..n_culprits {
        flows.push(NetFlow {
            src_host: h,
            dst_host: sink_c,
            initial_rate: 0.5 * trunk_capacity / n_culprits as f64,
            rp: bcn.as_ref().map(|(_, rp)| *rp),
            priority: 0,
        });
    }
    let deep_victim = flows.len();
    flows.push(NetFlow {
        src_host: deep_victim_host,
        dst_host: sink_v,
        initial_rate: 0.25 * trunk_capacity,
        rp: bcn.as_ref().map(|(_, rp)| *rp),
        priority: 0,
    });

    let cfg = NetConfig {
        hosts: n_hosts,
        switches: vec![s0, s1, s2],
        links,
        flows,
        frame_bits,
        t_end: Time::from_secs(t_end),
        record_interval: Duration::from_secs(t_end / 2000.0),
        pause,
        faults: FaultConfig::none(),
        scheduler: Scheduler::default(),
    };
    (cfg, deep_victim)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRUNK: f64 = 1.0e9;
    const FRAME: f64 = 8_000.0;

    fn bcn_pair() -> (CpConfig, RpConfig) {
        // Calibrated like sim::from_fluid for the bottleneck at TRUNK/2.
        let q0 = 10.0 * FRAME;
        let cp = CpConfig {
            cpid: CpId(2),
            q0_bits: q0,
            qsc_bits: 50.0 * FRAME,
            w: 2.0 / FRAME * 100.0,
            sample_every: 5,
            fb_quant: None,
            gate_positive: false,
        };
        let rp = RpConfig {
            gi: 0.5,
            gd: 1.0 / 512.0,
            ru: 1.0e4,
            gain_scale: FRAME * 4.0 / (0.2 * TRUNK),
            r_min: TRUNK * 1e-6,
            r_max: TRUNK,
        };
        (cp, rp)
    }

    fn run_victim(
        pause_enabled: bool,
        bcn: Option<(CpConfig, RpConfig)>,
    ) -> (NetReport, usize, f64) {
        let t_end = 0.25;
        let pause = PauseConfig {
            enabled: pause_enabled,
            hold: Duration::from_secs(40.0 * FRAME / TRUNK),
            per_priority: false,
        };
        let (cfg, victim) =
            victim_topology(4, TRUNK, FRAME, Duration::from_secs(1e-6), t_end, pause, bcn);
        (NetSim::new(cfg).run(), victim, t_end)
    }

    #[test]
    fn droptail_drops_culprits_but_victim_flows() {
        let (report, victim, t_end) = run_victim(false, None);
        let culprit_drops: u64 = report.flows[..victim].iter().map(|f| f.dropped_frames).sum();
        assert!(culprit_drops > 0, "culprits must overflow the bottleneck");
        // Victim path is uncongested: near-full throughput, no drops.
        let vt = report.throughput(victim, t_end);
        assert!(vt > 0.22 * TRUNK, "victim throughput {vt}");
        assert_eq!(report.flows[victim].dropped_frames, 0);
    }

    #[test]
    fn pause_spreads_congestion_to_the_victim() {
        let (report, victim, t_end) = run_victim(true, None);
        // PAUSE keeps the loss down but stalls the shared trunk: the
        // innocent victim loses throughput (head-of-line blocking).
        let vt = report.throughput(victim, t_end);
        assert!(vt < 0.2 * TRUNK, "victim should be collateral damage under PAUSE: {vt}");
        // And PAUSE propagated upstream: both S2's and S1's ingress links
        // got paused.
        assert!(report.pause_counts.iter().sum::<u64>() > 0);
        let trunk_pauses = report.pause_counts[5]; // trunk link index
        assert!(trunk_pauses > 0, "trunk never paused: {:?}", report.pause_counts);
    }

    #[test]
    fn bcn_shields_the_victim() {
        let (report, victim, t_end) = run_victim(true, Some(bcn_pair()));
        let vt = report.throughput(victim, t_end);
        assert!(vt > 0.22 * TRUNK, "BCN should shield the victim: {vt} vs 0.25 target");
        // Culprit sources got regulated towards the bottleneck fair
        // share (TRUNK/8 each).
        assert!(report.feedback_messages > 0);
        for f in &report.flows[..victim] {
            assert!(f.final_rate < 0.3 * TRUNK, "culprit not regulated: {}", f.final_rate);
        }
    }

    #[test]
    fn conservation_per_flow() {
        let (report, victim, t_end) = run_victim(false, None);
        for (i, f) in report.flows.iter().enumerate() {
            // Delivered cannot exceed offered.
            let offered = self_offered(i, victim, t_end);
            assert!(
                f.delivered_bits <= offered * 1.01 + FRAME,
                "flow {i}: delivered {} > offered {offered}",
                f.delivered_bits
            );
        }
    }

    fn self_offered(i: usize, victim: usize, t_end: f64) -> f64 {
        let rate = if i == victim { 0.25 * TRUNK } else { 0.5 * TRUNK / 4.0 };
        rate * t_end
    }

    #[test]
    fn determinism() {
        let (a, _, _) = run_victim(true, Some(bcn_pair()));
        let (b, _, _) = run_victim(true, Some(bcn_pair()));
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.pause_counts, b.pause_counts);
    }

    #[test]
    fn rejects_unroutable_flow_at_construction() {
        // Remove S1's route to sink_c: the culprit flows become
        // unroutable and construction must say so (previously every
        // frame was silently dropped at forward time instead).
        let (mut cfg, _) = victim_topology(
            2,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            0.1,
            PauseConfig { enabled: false, hold: Duration::ZERO, per_priority: false },
            None,
        );
        let sink_c = cfg.hosts - 2;
        cfg.switches[0].routes.retain(|(d, _)| *d != sink_c);
        let err = NetSim::try_new(cfg).expect_err("must reject the unroutable flow");
        assert_eq!(err.field, "flows");
        assert!(err.reason.contains("unroutable"), "unexpected reason: {}", err.reason);
    }

    #[test]
    fn rejects_misdelivering_route_at_construction() {
        // Point S2's sink_c route at the victim sink: the flow "arrives"
        // somewhere, just not at its destination.
        let (mut cfg, _) = victim_topology(
            2,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            0.1,
            PauseConfig { enabled: false, hold: Duration::ZERO, per_priority: false },
            None,
        );
        let sink_c = cfg.hosts - 2;
        let victim_link = cfg.links.len() - 1;
        for r in &mut cfg.switches[1].routes {
            if r.0 == sink_c {
                r.1 = victim_link;
            }
        }
        let err = NetSim::try_new(cfg).expect_err("must reject the misdelivering route");
        assert_eq!(err.field, "flows");
        assert!(err.reason.contains("instead"), "unexpected reason: {}", err.reason);
    }

    #[test]
    fn rejects_routing_loop_at_construction() {
        // S1 and S2 bounce sink_c traffic between each other forever.
        let (mut cfg, _) = victim_topology(
            2,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            0.1,
            PauseConfig { enabled: false, hold: Duration::ZERO, per_priority: false },
            None,
        );
        let sink_c = cfg.hosts - 2;
        let back = cfg.links.len();
        cfg.links.push(LinkSpec {
            from: Endpoint::Switch(1),
            to: Endpoint::Switch(0),
            capacity: TRUNK,
            delay: Duration::from_secs(1e-6),
        });
        for r in &mut cfg.switches[1].routes {
            if r.0 == sink_c {
                r.1 = back;
            }
        }
        let err = NetSim::try_new(cfg).expect_err("must reject the routing loop");
        assert_eq!(err.field, "flows");
        assert!(err.reason.contains("loop"), "unexpected reason: {}", err.reason);
    }

    #[test]
    fn rejects_route_over_foreign_link() {
        let (mut cfg, _) = victim_topology(
            2,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            0.1,
            PauseConfig { enabled: false, hold: Duration::ZERO, per_priority: false },
            None,
        );
        // S1 claims a route over S2's bottleneck link.
        let bottleneck = cfg.links.len() - 2;
        cfg.switches[0].routes[0].1 = bottleneck;
        let err = NetSim::try_new(cfg).expect_err("must reject the foreign link");
        assert_eq!(err.field, "switches");
        assert!(err.reason.contains("does not own"), "unexpected reason: {}", err.reason);
    }

    #[test]
    #[should_panic(expected = "no uplink")]
    fn rejects_source_without_uplink() {
        let (mut cfg, _) = victim_topology(
            2,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            0.1,
            PauseConfig { enabled: false, hold: Duration::ZERO, per_priority: false },
            None,
        );
        // Point a flow at a sink host (no uplink) as source.
        cfg.flows[0].src_host = cfg.hosts - 1;
        let _ = NetSim::new(cfg);
    }

    #[test]
    fn pfc_isolates_priority_classes() {
        // Same victim scenario, but the victim rides priority class 1
        // while the culprits congest class 0. Per-priority PAUSE (PFC)
        // pauses only the storage class: the victim keeps its full
        // throughput, and the fabric stays lossless — the cross-class
        // fix 802.1Qbb provides without any end-to-end control loop.
        let t_end = 0.25;
        let pause = PauseConfig {
            enabled: true,
            hold: Duration::from_secs(40.0 * FRAME / TRUNK),
            per_priority: true,
        };
        let (mut cfg, victim) =
            victim_topology(4, TRUNK, FRAME, Duration::from_secs(1e-6), t_end, pause, None);
        cfg.flows[victim].priority = 1;
        let report = NetSim::new(cfg).run();
        let vt = report.throughput(victim, t_end);
        assert!(vt > 0.22 * TRUNK, "PFC should isolate the victim's class: {vt}");
        let total_drops: u64 = report.flows.iter().map(|f| f.dropped_frames).sum();
        assert_eq!(total_drops, 0, "PFC run must stay lossless");
        assert!(report.pause_counts.iter().sum::<u64>() > 0, "culprit class was paused");
    }

    #[test]
    fn pfc_does_not_help_within_a_class() {
        // Victim in the SAME class as the culprits: PFC degenerates to
        // plain PAUSE for that class and the victim still starves — the
        // within-class gap that motivates BCN.
        let t_end = 0.25;
        let pause = PauseConfig {
            enabled: true,
            hold: Duration::from_secs(40.0 * FRAME / TRUNK),
            per_priority: true,
        };
        let (cfg, victim) =
            victim_topology(4, TRUNK, FRAME, Duration::from_secs(1e-6), t_end, pause, None);
        let report = NetSim::new(cfg).run();
        let vt = report.throughput(victim, t_end);
        assert!(vt < 0.2 * TRUNK, "same-class victim should still starve: {vt}");
    }

    #[test]
    fn pause_cascades_two_hops_in_the_parking_lot() {
        let t_end = 0.25;
        let pause = PauseConfig {
            enabled: true,
            hold: Duration::from_secs(40.0 * FRAME / TRUNK),
            per_priority: false,
        };
        let (cfg, victim) =
            parking_lot_topology(4, TRUNK, FRAME, Duration::from_secs(1e-6), t_end, pause, None);
        let trunk0 = 5; // per the builder's link layout with 4 culprits
        let trunk1 = 6;
        let report = NetSim::new(cfg).run();
        // The pause tree reached both trunks: congestion rolled back from
        // S2 to S1 to S0 exactly as the paper's introduction describes.
        assert!(report.pause_counts[trunk1] > 0, "{:?}", report.pause_counts);
        assert!(report.pause_counts[trunk0] > 0, "{:?}", report.pause_counts);
        // And the deep victim (two switches from the hotspot) starves.
        let vt = report.throughput(victim, t_end);
        assert!(vt < 0.2 * TRUNK, "deep victim should starve: {vt}");
    }

    #[test]
    fn bcn_protects_the_deep_victim_in_the_parking_lot() {
        let t_end = 0.25;
        let pause = PauseConfig {
            enabled: true,
            hold: Duration::from_secs(40.0 * FRAME / TRUNK),
            per_priority: false,
        };
        let (cfg, victim) = parking_lot_topology(
            4,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            t_end,
            pause,
            Some(bcn_pair()),
        );
        let report = NetSim::new(cfg).run();
        let vt = report.throughput(victim, t_end);
        assert!(vt > 0.22 * TRUNK, "BCN should shield the deep victim: {vt}");
        let total_drops: u64 = report.flows.iter().map(|f| f.dropped_frames).sum();
        assert_eq!(total_drops, 0, "BCN+PAUSE must stay lossless");
    }

    #[test]
    fn switch_queue_series_recorded() {
        let (report, _, _) = run_victim(false, None);
        assert_eq!(report.switch_queues.len(), 2);
        assert!(report.switch_queues[1].len() > 100);
        // S2 (owning the bottleneck) builds more backlog than S1.
        assert!(report.switch_queues[1].max() >= report.switch_queues[0].max());
    }

    #[test]
    fn telemetry_captures_queues_rates_and_pause_spans() {
        use telemetry::{Event, SpanKind, TelemetryLevel};
        let t_end = 0.25;
        let pause = PauseConfig {
            enabled: true,
            hold: Duration::from_secs(40.0 * FRAME / TRUNK),
            per_priority: false,
        };
        let (cfg, victim) = victim_topology(
            4,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            t_end,
            pause,
            Some(bcn_pair()),
        );
        let n_flows = cfg.flows.len();
        let report = NetSim::new(cfg)
            .with_telemetry_sink(telemetry::Telemetry::new(TelemetryLevel::Full))
            .run();
        let tel = report.telemetry.as_ref().expect("sink attached");
        // Every switch has a queue-depth series, every flow a rate series.
        for si in 0..2u32 {
            let s = tel.series.get(SeriesKind::QueueDepth, si).expect("switch series");
            assert!(!s.is_empty(), "switch {si} series empty");
        }
        for fi in 0..n_flows as u32 {
            assert!(tel.series.get(SeriesKind::FlowRate, fi).is_some(), "flow {fi} series");
        }
        // PAUSE fired (the victim run pauses the trunk) and each
        // assertion produced a span pair in the trace.
        let pauses: u64 = report.pause_counts.iter().sum();
        assert!(pauses > 0);
        let spans = tel
            .trace
            .iter()
            .filter(|e| matches!(e, Event::SpanBegin { kind: SpanKind::PauseEpisode, .. }))
            .count() as u64;
        assert_eq!(spans, pauses, "one PAUSE span per assertion");
        assert_eq!(tel.metrics.counter_by_name("sim.pause_events"), Some(pauses));
        assert_eq!(tel.metrics.counter_by_name("sim.bcn_messages"), Some(report.feedback_messages));
        // Scheduler stats were flushed into the shard.
        assert!(tel.metrics.counter_by_name("scheduler.events_popped").is_some_and(|v| v > 0));
        // An untelemetered run is unaffected (same trajectory).
        let (plain, v2, _) = run_victim(true, Some(bcn_pair()));
        assert_eq!(v2, victim);
        assert_eq!(plain.flows, report.flows, "telemetry must not perturb the run");
        assert_eq!(plain.pause_counts, report.pause_counts);
    }

    #[test]
    fn fault_free_runs_record_no_faults() {
        let (report, _, _) = run_victim(true, Some(bcn_pair()));
        assert_eq!(report.faults, FaultCounts::default());
    }

    #[test]
    fn feedback_loss_breaks_bcn_protection() {
        let t_end = 0.25;
        let pause = PauseConfig {
            enabled: true,
            hold: Duration::from_secs(40.0 * FRAME / TRUNK),
            per_priority: false,
        };
        let (mut cfg, _victim) = victim_topology(
            4,
            TRUNK,
            FRAME,
            Duration::from_secs(1e-6),
            t_end,
            pause,
            Some(bcn_pair()),
        );
        cfg.faults.feedback_loss = 1.0;
        let report = NetSim::new(cfg).run();
        assert_eq!(report.feedback_messages, 0, "all feedback must be dropped");
        assert!(report.faults.feedback_dropped > 0);
        // Without feedback the culprit sources never slow down.
        let culprit_rate = report.flows[0].final_rate;
        assert!(culprit_rate >= 0.125 * TRUNK * 0.99, "culprit regulated anyway: {culprit_rate}");
    }

    #[test]
    fn faulty_net_runs_are_deterministic() {
        let mk = || {
            let pause = PauseConfig {
                enabled: true,
                hold: Duration::from_secs(40.0 * FRAME / TRUNK),
                per_priority: false,
            };
            let (mut cfg, _) = victim_topology(
                4,
                TRUNK,
                FRAME,
                Duration::from_secs(1e-6),
                0.1,
                pause,
                Some(bcn_pair()),
            );
            cfg.faults.seed = 5;
            cfg.faults.feedback_loss = 0.3;
            cfg.faults.data_loss = 0.01;
            cfg
        };
        let a = NetSim::new(mk()).run();
        let b = NetSim::new(mk()).run();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.faults, b.faults);
        assert!(a.faults.total() > 0, "faults were actually injected");
    }
}
