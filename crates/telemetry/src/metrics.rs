//! Named metrics registry: counters, gauges, and histograms.
//!
//! Registration returns `Copy` integer handles so hot loops touch a
//! `Vec` slot directly instead of hashing a name. Names are only used
//! at registration time and when rendering summaries.

use crate::histogram::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Last/min/max/sample-count summary of a gauge.
#[derive(Debug, Clone, PartialEq)]
pub struct Gauge {
    /// Most recently set value (NaN before the first set).
    pub last: f64,
    /// Smallest value ever set.
    pub min: f64,
    /// Largest value ever set.
    pub max: f64,
    /// Number of `set` calls.
    pub samples: u64,
}

impl Gauge {
    fn new() -> Self {
        Self { last: f64::NAN, min: f64::INFINITY, max: f64::NEG_INFINITY, samples: 0 }
    }
}

/// A registry of named counters, gauges, and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<Gauge>,
    histogram_names: Vec<String>,
    histograms: Vec<Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or looks up) a counter by name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or looks up) a gauge by name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(Gauge::new());
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or looks up) a histogram by name.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histogram_names.iter().position(|n| n == name) {
            return HistogramId(i);
        }
        self.histogram_names.push(name.to_string());
        self.histograms.push(Histogram::new());
        HistogramId(self.histograms.len() - 1)
    }

    /// Increments a counter by `n`.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Sets a gauge to `v`, updating its min/max envelope.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        let g = &mut self.gauges[id.0];
        g.last = v;
        if v.is_finite() {
            g.min = g.min.min(v);
            g.max = g.max.max(v);
        }
        g.samples += 1;
    }

    /// Records a sample into a histogram.
    #[inline]
    pub fn record(&mut self, id: HistogramId, v: f64) {
        self.histograms[id.0].record(v);
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Current state of a gauge.
    #[must_use]
    pub fn gauge_value(&self, id: GaugeId) -> &Gauge {
        &self.gauges[id.0]
    }

    /// Read access to a histogram.
    #[must_use]
    pub fn histogram_value(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0]
    }

    /// Looks up a counter's value by name (for tests and summaries).
    #[must_use]
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        let i = self.counter_names.iter().position(|n| n == name)?;
        Some(self.counters[i])
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn gauge_by_name(&self, name: &str) -> Option<&Gauge> {
        let i = self.gauge_names.iter().position(|n| n == name)?;
        Some(&self.gauges[i])
    }

    /// Looks up a histogram by name.
    #[must_use]
    pub fn histogram_by_name(&self, name: &str) -> Option<&Histogram> {
        let i = self.histogram_names.iter().position(|n| n == name)?;
        Some(&self.histograms[i])
    }

    /// Merges another registry into this one, matching metrics by name.
    ///
    /// Counters add; histograms merge bucket-wise (see
    /// [`Histogram::merge`]); gauge envelopes widen (`min`/`max`/
    /// `samples`), with `last` taken from `other` when it recorded
    /// anything — "last write wins" in merge order, the convention for
    /// shards merged oldest-first. Metrics present only in `other` are
    /// registered here first, so no data is dropped.
    pub fn merge(&mut self, other: &Registry) {
        for (name, v) in other.counters() {
            let id = self.counter(name);
            self.inc(id, v);
        }
        for (name, g) in other.gauges() {
            let id = self.gauge(name);
            let mine = &mut self.gauges[id.0];
            if g.samples > 0 {
                mine.last = g.last;
                mine.min = mine.min.min(g.min);
                mine.max = mine.max.max(g.max);
                mine.samples += g.samples;
            }
        }
        for (name, h) in other.histograms() {
            let id = self.histogram(name);
            self.histograms[id.0].merge(h);
        }
    }

    /// Overwrites a counter with an absolute value (snapshot restore).
    pub(crate) fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0] = v;
    }

    /// Overwrites a gauge's full state — including an unset `last` of
    /// NaN and the empty-envelope `±inf` sentinels that no sequence of
    /// public `set_gauge` calls can reproduce (snapshot restore).
    pub(crate) fn restore_gauge(&mut self, id: GaugeId, g: Gauge) {
        self.gauges[id.0] = g;
    }

    /// Overwrites a histogram's full state (snapshot restore).
    pub(crate) fn restore_histogram(&mut self, id: HistogramId, h: Histogram) {
        self.histograms[id.0] = h;
    }

    /// Iterates `(name, value)` over all counters in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names.iter().map(String::as_str).zip(self.counters.iter().copied())
    }

    /// Iterates `(name, gauge)` over all gauges in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, &Gauge)> {
        self.gauge_names.iter().map(String::as_str).zip(self.gauges.iter())
    }

    /// Iterates `(name, histogram)` over all histograms in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histogram_names.iter().map(String::as_str).zip(self.histograms.iter())
    }

    /// Renders the registry in the Prometheus text exposition format.
    ///
    /// Dots in metric names become underscores (`solver.steps_accepted`
    /// → `solver_steps_accepted`); histograms export as summaries with
    /// `quantile` labels plus `_sum`/`_count`, and gauges that never
    /// recorded a sample are omitted. Intended for scraping by the
    /// future serving workload, so the output is stable line-oriented
    /// text, deterministic in registration order.
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        fn sanitize(name: &str) -> String {
            name.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect()
        }
        let mut out = String::new();
        for (name, v) in self.counters() {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        }
        for (name, g) in self.gauges() {
            if g.samples == 0 {
                continue;
            }
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {}", g.last);
            let _ = writeln!(out, "{name}_min {}", g.min);
            let _ = writeln!(out, "{name}_max {}", g.max);
        }
        for (name, h) in self.histograms() {
            if h.count() == 0 {
                continue;
            }
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE {name} summary");
            for q in [0.5, 0.9, 0.99] {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {}", h.quantile(q));
            }
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_dedups_by_name() {
        let mut r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        assert_eq!(a, b);
        r.inc(a, 2);
        r.inc(b, 3);
        assert_eq!(r.counter_by_name("x"), Some(5));
    }

    #[test]
    fn gauge_tracks_envelope() {
        let mut r = Registry::new();
        let g = r.gauge("q");
        r.set_gauge(g, 4.0);
        r.set_gauge(g, -1.0);
        r.set_gauge(g, 2.5);
        let v = r.gauge_value(g);
        assert_eq!(v.last, 2.5);
        assert_eq!(v.min, -1.0);
        assert_eq!(v.max, 4.0);
        assert_eq!(v.samples, 3);
    }

    #[test]
    fn histogram_roundtrip_through_registry() {
        let mut r = Registry::new();
        let h = r.histogram("h");
        for v in [1.0, 2.0, 3.0] {
            r.record(h, v);
        }
        assert_eq!(r.histogram_by_name("h").unwrap().count(), 3);
        assert!(r.histogram_by_name("missing").is_none());
    }

    #[test]
    fn merge_adds_counters_and_registers_missing_names() {
        let mut a = Registry::new();
        let ca = a.counter("shared");
        a.inc(ca, 5);
        let mut b = Registry::new();
        let cb = b.counter("shared");
        b.inc(cb, 7);
        let only_b = b.counter("only_in_b");
        b.inc(only_b, 3);
        a.merge(&b);
        assert_eq!(a.counter_by_name("shared"), Some(12));
        assert_eq!(a.counter_by_name("only_in_b"), Some(3));
    }

    #[test]
    fn merge_widens_gauge_envelope_with_last_write_wins() {
        let mut a = Registry::new();
        let ga = a.gauge("q");
        a.set_gauge(ga, 10.0);
        let mut b = Registry::new();
        let gb = b.gauge("q");
        b.set_gauge(gb, -2.0);
        b.set_gauge(gb, 4.0);
        a.merge(&b);
        let g = a.gauge_by_name("q").unwrap();
        assert_eq!(g.last, 4.0, "merge order is oldest-first; the shard wrote last");
        assert_eq!(g.min, -2.0);
        assert_eq!(g.max, 10.0);
        assert_eq!(g.samples, 3);
        // An unset shard gauge must not clobber `last` with NaN.
        let mut c = Registry::new();
        c.gauge("q");
        a.merge(&c);
        assert_eq!(a.gauge_by_name("q").unwrap().last, 4.0);
    }

    #[test]
    fn merge_combines_histograms_by_name() {
        let mut a = Registry::new();
        let ha = a.histogram("h");
        a.record(ha, 1.0);
        let mut b = Registry::new();
        let hb = b.histogram("h");
        b.record(hb, 2.0);
        b.record(hb, 3.0);
        a.merge(&b);
        let h = a.histogram_by_name("h").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), 3.0);
    }

    #[test]
    fn prometheus_export_covers_every_recorded_metric() {
        let mut r = Registry::new();
        let c = r.counter("solver.steps_accepted");
        r.inc(c, 42);
        let g = r.gauge("queue.occupancy_bits");
        r.set_gauge(g, 1.5e6);
        r.gauge("scheduler.max_pending");
        let h = r.histogram("solver.step_size_s");
        r.record(h, 1e-3);
        r.record(h, 2e-3);
        let text = r.to_prometheus();
        assert!(text.contains("# TYPE solver_steps_accepted counter\nsolver_steps_accepted 42\n"));
        assert!(text.contains("# TYPE queue_occupancy_bits gauge\nqueue_occupancy_bits 1500000\n"));
        assert!(!text.contains("scheduler_max_pending"), "unset gauge must be omitted");
        assert!(text.contains("solver_step_size_s{quantile=\"0.5\"}"));
        assert!(text.contains("solver_step_size_s_count 2\n"));
        // Every non-comment line is `name[labels] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().is_some_and(|n| !n.is_empty()), "bad line: {line}");
            assert!(
                parts.next().is_some_and(|v| v.parse::<f64>().is_ok()),
                "unparseable value: {line}"
            );
        }
    }

    #[test]
    fn iteration_preserves_registration_order() {
        let mut r = Registry::new();
        r.counter("first");
        r.counter("second");
        let names: Vec<&str> = r.counters().map(|(n, _)| n).collect();
        assert_eq!(names, ["first", "second"]);
    }
}
