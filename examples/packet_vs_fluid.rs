//! Side-by-side: the paper's fluid abstraction vs a packet-level BCN
//! deployment with real frames, sampling, and feedback messages.
//!
//! Run with `cargo run --release --example packet_vs_fluid`.

use bcn::simulate::SaturatingFluid;
use dcesim::sim::{fluid_validation_params, SimConfig, Simulation};
use dcesim::time::Duration;

fn main() {
    let params = fluid_validation_params();
    let t_end = 0.5;

    // Packet level: 8000-bit frames, 2 us propagation, calibrated gains.
    let cfg = SimConfig::from_fluid(&params, 8_000.0, Duration::from_secs(2e-6), t_end);
    let report = Simulation::new(cfg).run();
    let m = &report.metrics;

    // Fluid level: the saturating (physical) model from the same start.
    let fluid = SaturatingFluid::new(params.clone()).run_canonical(t_end);

    println!(
        "bottleneck: {} Gbit/s, {} flows, q0 = {} kbit",
        params.capacity / 1e9,
        params.n_flows,
        params.q0 / 1e3
    );
    println!();
    println!("{:<28} {:>14} {:>14}", "metric", "packet DES", "fluid model");
    println!("{:<28} {:>14.3e} {:>14.3e}", "max queue (bits)", m.queue.max(), fluid.max_queue);
    println!(
        "{:<28} {:>14.3e} {:>14.3e}",
        "tail min queue (bits)",
        m.queue.min_after(0.6 * t_end),
        tail_min(&fluid.times, &fluid.queue, 0.6 * t_end)
    );
    println!(
        "{:<28} {:>14} {:>14.0}",
        "drops (frames)",
        m.dropped_frames,
        fluid.dropped_bits / 8_000.0
    );
    println!("{:<28} {:>14.4} {:>14}", "utilisation", m.utilization(params.capacity, t_end), "-");
    println!("{:<28} {:>14.4} {:>14}", "Jain fairness", m.fairness(), "1 (by assumption)");
    println!("{:<28} {:>14} {:>14}", "feedback messages", m.feedback_messages, "-");
    println!();

    let err = (m.queue.max() / fluid.max_queue - 1.0) * 100.0;
    println!("max-queue disagreement: {err:.2}% — the fluid-flow approximation");
    println!("(paper Section III-A) holds because frames are small against the");
    println!("queue scale and feedback outruns the loop's natural frequency.");
}

fn tail_min(ts: &[f64], qs: &[f64], t0: f64) -> f64 {
    ts.iter().zip(qs).filter(|(t, _)| **t >= t0).map(|(_, q)| *q).fold(f64::INFINITY, f64::min)
}
