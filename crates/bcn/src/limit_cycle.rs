//! Limit-cycle analysis of the BCN system (paper Fig. 7).
//!
//! In the *linearised* Case-1 system the round map on the switching line
//! is exactly linear, `P(s) = rho * s` (see [`crate::rounds`]): every
//! orbit is a closed cycle iff `rho = 1`, which for the BCN parameter
//! space happens only on the undamped boundary (`w -> 0`, removing the
//! queue-derivative feedback from `sigma`). The paper's Fig. 7 shows this
//! sustained, amplitude-preserving oscillation.
//!
//! The *full nonlinear* decrease law breaks homogeneity — the round map's
//! local ratio depends on amplitude — so isolated limit cycles become
//! possible, and are found here with a Poincaré return map on the
//! switching line.

use phaseplane::poincare::{find_limit_cycle, LimitCycle, PoincareError, ReturnMap};

use crate::model::BcnFluid;
use crate::params::BcnParams;
use crate::rounds::round_ratio;

/// How close the linearised round ratio is to the limit-cycle condition
/// `rho = 1`; the paper's Fig. 7 regime is `|rho - 1| ~ 0`.
#[must_use]
pub fn distance_to_limit_cycle(params: &BcnParams) -> Option<f64> {
    round_ratio(params).map(|rho| (rho - 1.0).abs())
}

/// Whether the linearised system is (numerically) in the limit-cycle
/// regime: `|rho - 1| < tol`.
#[must_use]
pub fn linearized_has_limit_cycle(params: &BcnParams, tol: f64) -> bool {
    distance_to_limit_cycle(params).is_some_and(|d| d < tol)
}

/// Searches for the sigma weight `w` at which the linearised round ratio
/// reaches the target value, by bisection over `[w_lo, w_hi]`.
///
/// `rho` decreases monotonically in `w` (more derivative feedback, more
/// damping), so this can drive the system towards the limit-cycle
/// boundary (`target = 1` is reached only as `w -> 0`, hence pass a target
/// slightly below 1 to obtain a slowly-converging, visually periodic
/// system like Fig. 7).
///
/// Returns `None` if the target is not bracketed.
#[must_use]
pub fn find_w_for_ratio(params: &BcnParams, target: f64, w_lo: f64, w_hi: f64) -> Option<f64> {
    assert!(w_lo > 0.0 && w_lo < w_hi, "need 0 < w_lo < w_hi");
    let rho_at = |w: f64| round_ratio(&params.clone().with_w(w));
    let g_lo = rho_at(w_lo)? - target;
    let g_hi = rho_at(w_hi)? - target;
    if g_lo.signum() == g_hi.signum() {
        return None;
    }
    let (mut lo, mut hi) = (w_lo, w_hi);
    let mut g_lo = g_lo;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break;
        }
        let gm = rho_at(mid)? - target;
        if gm == 0.0 {
            return Some(mid);
        }
        if gm.signum() == g_lo.signum() {
            lo = mid;
            g_lo = gm;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Amplitude-dependent round ratio of the **full nonlinear** system: the
/// return-map ratio `P(s)/s` at switching-line coordinate `s`.
///
/// # Errors
///
/// Propagates [`PoincareError`] from the return-map integration.
pub fn nonlinear_round_ratio(sys: &BcnFluid, s: f64) -> Result<f64, PoincareError> {
    let map = ReturnMap::new(sys, sys.switching_line())
        .with_horizon(nonlinear_horizon(sys))
        .with_tol(1e-10);
    map.contraction_ratio(s)
}

/// Searches the full nonlinear system for an isolated limit cycle with
/// switching-line coordinate in `[s_lo, s_hi]`.
///
/// # Errors
///
/// Propagates [`PoincareError`] from the underlying integrations.
pub fn find_nonlinear_limit_cycle(
    sys: &BcnFluid,
    s_lo: f64,
    s_hi: f64,
) -> Result<Option<LimitCycle>, PoincareError> {
    let map = ReturnMap::new(sys, sys.switching_line())
        .with_horizon(nonlinear_horizon(sys))
        .with_tol(1e-10);
    find_limit_cycle(&map, s_lo, s_hi)
}

fn nonlinear_horizon(sys: &BcnFluid) -> f64 {
    // A round takes ~pi/beta per region; allow 20 rounds of slack.
    let p = sys.params();
    let beta_i = (p.a()).sqrt();
    let beta_d = (p.b() * p.capacity).sqrt();
    20.0 * std::f64::consts::PI * (1.0 / beta_i + 1.0 / beta_d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> BcnParams {
        BcnParams::test_defaults()
    }

    #[test]
    fn defaults_are_not_a_limit_cycle() {
        assert!(!linearized_has_limit_cycle(&p(), 1e-3));
        let d = distance_to_limit_cycle(&p()).unwrap();
        assert!(d > 1e-3, "distance {d}");
    }

    #[test]
    fn ratio_increases_towards_one_as_w_shrinks() {
        let rho_small_w = round_ratio(&p().with_w(1e-3)).unwrap();
        let rho_big_w = round_ratio(&p().with_w(4.0)).unwrap();
        assert!(rho_small_w > rho_big_w, "{rho_small_w} vs {rho_big_w}");
        assert!(rho_small_w > 0.99, "w -> 0 approaches the cycle: {rho_small_w}");
    }

    #[test]
    fn find_w_hits_requested_ratio() {
        let target = 0.9;
        let w = find_w_for_ratio(&p(), target, 1e-4, 10.0).expect("bracketed");
        let rho = round_ratio(&p().with_w(w)).unwrap();
        assert!((rho - target).abs() < 1e-6, "rho({w}) = {rho}");
    }

    #[test]
    fn nonlinear_ratio_close_to_linear_for_small_amplitude() {
        let params = p();
        let sys = BcnFluid::new(params.clone());
        let rho_lin = round_ratio(&params).unwrap();
        // Small orbit: nonlinearity negligible. s < 0 selects the ray the
        // canonical trajectory actually crosses on (x > 0, y < 0 for the
        // line direction convention).
        let s = -1e-3 * params.q0 * (1.0 + params.k() * params.k()).sqrt();
        let rho_nl = nonlinear_round_ratio(&sys, s).unwrap();
        assert!(
            (rho_nl - rho_lin).abs() < 0.05 * rho_lin,
            "nonlinear {rho_nl} vs linear {rho_lin}"
        );
    }

    #[test]
    fn no_spurious_nonlinear_cycle_for_defaults() {
        // For the contracting defaults the nonlinear system should not
        // report an isolated cycle in a moderate amplitude window.
        let params = p();
        let sys = BcnFluid::new(params.clone());
        let s1 = -0.05 * params.q0;
        let s2 = -0.5 * params.q0;
        let found = find_nonlinear_limit_cycle(&sys, s2.min(s1), s2.max(s1)).unwrap();
        assert!(found.is_none(), "unexpected cycle {found:?}");
    }
}
