//! Property-based topology-generator tests (requires the
//! `proptest-tests` feature and a vendored `proptest`; see Cargo.toml).
//!
//! Deterministic versions of these checks run unconditionally in the
//! `topo` module's unit tests on fixed dimensions; this file lets
//! proptest explore the dimension/speed space and shrink a failing
//! fabric to a minimal reproducer.

use dcesim::net::Endpoint;
use dcesim::time::Duration;
use dcesim::topo::{Fabric, TopoSpec};
use proptest::prelude::*;

/// Follows the compiled route tables from `src` to `dst`, returning the
/// hop count (links traversed). Fails on a missing route, a path longer
/// than the node count (a loop), or arrival at the wrong host.
fn walk(fabric: &Fabric, src: usize, dst: usize) -> Result<usize, String> {
    let mut link = 2 * src; // host access up-link
    let mut hops = 0usize;
    let limit = fabric.switches.len() + 2;
    loop {
        hops += 1;
        if hops > limit {
            return Err(format!("path {src}->{dst} exceeds {limit} hops: loop"));
        }
        match fabric.links[link].to {
            Endpoint::Host(h) => {
                return if h == dst {
                    Ok(hops)
                } else {
                    Err(format!("path {src}->{dst} arrived at host {h}"))
                };
            }
            Endpoint::Switch(si) => {
                link = fabric.switches[si]
                    .routes
                    .iter()
                    .find(|&&(d, _)| d == dst)
                    .ok_or_else(|| format!("switch {si} has no route to {dst}"))?
                    .1;
            }
        }
    }
}

/// All-pairs shortest hop counts over hosts + switches (hosts first),
/// unit weight per link — the reference the compiled next-hop tables
/// must match.
fn floyd_warshall(fabric: &Fabric) -> Vec<Vec<usize>> {
    let n = fabric.hosts + fabric.switches.len();
    let node = |e: Endpoint| match e {
        Endpoint::Host(h) => h,
        Endpoint::Switch(s) => fabric.hosts + s,
    };
    let inf = usize::MAX / 2;
    let mut dist = vec![vec![inf; n]; n];
    for (i, row) in dist.iter_mut().enumerate() {
        row[i] = 0;
    }
    for l in &fabric.links {
        let (a, b) = (node(l.from), node(l.to));
        dist[a][b] = dist[a][b].min(1);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = dist[i][k] + dist[k][j];
                if via < dist[i][j] {
                    dist[i][j] = via;
                }
            }
        }
    }
    dist
}

/// A random small fabric: leaf–spine with arbitrary dimensions or a
/// fat-tree with k ∈ {4, 6}.
fn small_spec() -> impl Strategy<Value = TopoSpec> {
    prop_oneof![
        (1usize..5, 1usize..4, 1usize..6, 0.5f64..4.0).prop_map(|(l, s, h, o)| {
            let mut spec = TopoSpec::leaf_spine(l, s, h);
            spec.oversub = o;
            spec
        }),
        prop_oneof![Just(4usize), Just(6usize)].prop_map(TopoSpec::fat_tree),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every host pair routes loop-free to its destination, and the
    /// compiled next-hop tables realise exactly the Floyd–Warshall
    /// shortest-path distance (single-path ECMP never detours).
    #[test]
    fn routes_are_loop_free_shortest_paths(spec in small_spec()) {
        let fabric = spec.build().expect("valid spec");
        let dist = floyd_warshall(&fabric);
        for src in 0..fabric.hosts {
            for dst in 0..fabric.hosts {
                if src == dst {
                    continue;
                }
                let hops = walk(&fabric, src, dst).map_err(
                    |e| TestCaseError::fail(format!("{spec:?}: {e}")))?;
                prop_assert_eq!(
                    hops, dist[src][dst],
                    "{:?}: {}->{} took {} hops, shortest is {}",
                    &spec, src, dst, hops, dist[src][dst]
                );
            }
        }
    }

    /// The PFC XOFF contribution is monotone in the link BDP: more
    /// capacity or more delay never lowers the threshold (and it always
    /// keeps the 2-MTU floor).
    #[test]
    fn pfc_thresholds_are_monotone_in_bdp(
        cap_a in 1e8f64..4e10,
        cap_b in 1e8f64..4e10,
        delay_a_us in 0.1f64..20.0,
        delay_b_us in 0.1f64..20.0,
        frame in 1_000.0f64..16_000.0,
    ) {
        let spec_at = |d_us: f64| {
            let mut s = TopoSpec::leaf_spine(2, 2, 2);
            s.delay = Duration::from_secs(d_us * 1e-6);
            s.frame_bits = frame;
            s
        };
        let (lo_d, hi_d) = if delay_a_us <= delay_b_us {
            (delay_a_us, delay_b_us)
        } else {
            (delay_b_us, delay_a_us)
        };
        let (lo_c, hi_c) = if cap_a <= cap_b { (cap_a, cap_b) } else { (cap_b, cap_a) };
        let lo = spec_at(lo_d).pfc_threshold_bits(lo_c);
        let hi = spec_at(hi_d).pfc_threshold_bits(hi_c);
        prop_assert!(lo <= hi, "threshold fell as BDP grew: {lo} > {hi}");
        prop_assert!(lo >= 2.0 * frame, "threshold below the 2-MTU floor: {lo}");
    }
}
