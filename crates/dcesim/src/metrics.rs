//! Measurement collection: time series, counters, throughput, fairness.

use crate::faults::FaultCounts;
use crate::time::Time;

/// A recorded scalar time series (e.g. queue occupancy).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    times: Vec<f64>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample.
    pub fn push(&mut self, t: Time, value: f64) {
        self.times.push(t.as_secs());
        self.values.push(value);
    }

    /// Pre-allocates room for `n` additional samples so recording stays
    /// allocation-free afterwards (the engines size this from
    /// `t_end / record_interval`).
    pub fn reserve(&mut self, n: usize) {
        self.times.reserve(n);
        self.values.reserve(n);
    }

    /// Appends a sample already expressed in seconds.
    ///
    /// The checkpoint codec restores recorded series through this path:
    /// `push` quantizes through [`Time`]'s integer nanoseconds, so a
    /// recorded `f64` second value would not round-trip bit-exactly.
    pub(crate) fn push_secs(&mut self, t_secs: f64, value: f64) {
        self.times.push(t_secs);
        self.values.push(value);
    }

    /// Sample times in seconds.
    #[must_use]
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Sample values.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Largest recorded value (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Smallest recorded value (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Smallest value recorded at or after time `t0_secs`.
    #[must_use]
    pub fn min_after(&self, t0_secs: f64) -> f64 {
        self.times
            .iter()
            .zip(&self.values)
            .filter(|(t, _)| **t >= t0_secs)
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min)
    }

    /// Time-weighted mean value over the recorded span (trapezoidal).
    #[must_use]
    pub fn time_weighted_mean(&self) -> f64 {
        if self.times.len() < 2 {
            return self.values.first().copied().unwrap_or(0.0);
        }
        let mut area = 0.0;
        for i in 1..self.times.len() {
            let dt = self.times[i] - self.times[i - 1];
            area += 0.5 * (self.values[i] + self.values[i - 1]) * dt;
        }
        let span = self.times.last().unwrap() - self.times[0];
        if span > 0.0 {
            area / span
        } else {
            self.values[0]
        }
    }
}

/// Jain's fairness index of a set of allocations:
/// `(sum x)^2 / (n * sum x^2)`; 1.0 is perfectly fair.
///
/// Returns 1.0 for an empty set (vacuously fair).
#[must_use]
pub fn jain_fairness(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (allocations.len() as f64 * sum_sq)
}

/// Collected scalar samples with order statistics (used for per-frame
/// queueing delays).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SampleSet {
    values: Vec<f64>,
}

impl SampleSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Pre-allocates room for `n` additional samples (see
    /// [`TimeSeries::reserve`]).
    pub fn reserve(&mut self, n: usize) {
        self.values.reserve(n);
    }

    /// The raw samples, in recording order.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean (`NaN` when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            f64::NAN
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// The `q`-quantile (`0 <= q <= 1`) by the nearest-rank method
    /// (`NaN` when empty).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must lie in [0, 1]");
        if self.values.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let idx = ((q * (sorted.len() - 1) as f64).round() as usize).min(sorted.len() - 1);
        sorted[idx]
    }

    /// Largest sample (`NaN` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::max)
    }
}

/// Aggregated outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimMetrics {
    /// Queue occupancy over time (bits).
    pub queue: TimeSeries,
    /// Aggregate offered rate over time (bit/s, sum of regulator rates).
    pub aggregate_rate: TimeSeries,
    /// Data frames delivered to the sink.
    pub delivered_frames: u64,
    /// Data frames dropped at the full buffer.
    pub dropped_frames: u64,
    /// BCN/QCN messages delivered to reaction points.
    pub feedback_messages: u64,
    /// PAUSE assertions sent.
    pub pause_events: u64,
    /// Per-source delivered bits (for fairness).
    pub per_source_bits: Vec<f64>,
    /// Bits delivered to the sink in total.
    pub delivered_bits: f64,
    /// Per-frame queueing delay at the bottleneck (seconds).
    pub queueing_delay: SampleSet,
    /// Per-source regulator rate over time (bit/s; zero while inactive).
    pub per_source_rate: Vec<TimeSeries>,
    /// Injected-fault tallies (all zero for a fault-free run).
    pub faults: FaultCounts,
}

impl SimMetrics {
    /// Bottleneck utilisation over `duration_secs` against `capacity`
    /// bit/s.
    #[must_use]
    pub fn utilization(&self, capacity: f64, duration_secs: f64) -> f64 {
        if capacity <= 0.0 || duration_secs <= 0.0 {
            return 0.0;
        }
        self.delivered_bits / (capacity * duration_secs)
    }

    /// Jain fairness of per-source delivered bits.
    #[must_use]
    pub fn fairness(&self) -> f64 {
        jain_fairness(&self.per_source_bits)
    }

    /// Fraction of offered frames that were dropped.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        let offered = self.delivered_frames + self.dropped_frames;
        if offered == 0 {
            0.0
        } else {
            self.dropped_frames as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_extrema_and_mean() {
        let mut s = TimeSeries::new();
        s.push(Time::from_secs(0.0), 0.0);
        s.push(Time::from_secs(1.0), 10.0);
        s.push(Time::from_secs(2.0), 0.0);
        assert_eq!(s.max(), 10.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.min_after(0.5), 0.0);
        assert_eq!(s.min_after(0.999), 0.0);
        // Triangle: mean = 5.
        assert!((s.time_weighted_mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn fairness_index() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[5.0, 5.0, 5.0]), 1.0);
        // One hog, three starved: (x)^2/(4 x^2) = 0.25.
        assert!((jain_fairness(&[8.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        let mid = jain_fairness(&[3.0, 1.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn sample_set_statistics() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 3.0).abs() < 1e-12);
        assert_eq!(s.percentile(0.0), 1.0);
        assert_eq!(s.percentile(0.5), 3.0);
        assert_eq!(s.percentile(1.0), 5.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn sample_set_rejects_bad_quantile() {
        let _ = SampleSet::new().percentile(1.5);
    }

    #[test]
    fn metrics_derived_quantities() {
        let m = SimMetrics {
            delivered_frames: 90,
            dropped_frames: 10,
            delivered_bits: 9.0e6,
            per_source_bits: vec![4.5e6, 4.5e6],
            ..SimMetrics::default()
        };
        assert!((m.drop_rate() - 0.1).abs() < 1e-12);
        assert!((m.utilization(1.0e7, 1.0) - 0.9).abs() < 1e-12);
        assert_eq!(m.fairness(), 1.0);
    }
}
