//! Regenerates the paper's Fig. 7 (limit cycle).

fn main() {
    if let Err(e) = bench::figures::fig07::main() {
        telemetry::log_line!("error: {e}");
        std::process::exit(1);
    }
}
