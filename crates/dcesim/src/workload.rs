//! Workload descriptions: which sources send what, when.
//!
//! The paper's traffic assumption is homogeneous long-lived flows (the
//! parallel read/write patterns of cluster file systems); the generators
//! here cover that plus the staggered-start and on/off variations used in
//! the fairness and transient experiments.

use crate::time::Time;

/// One flow's life cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSpec {
    /// When the source starts sending.
    pub start: Time,
    /// When the source stops (`None` = runs forever).
    pub stop: Option<Time>,
    /// Initial regulator rate in bit/s.
    pub initial_rate: f64,
    /// The flow ends after transferring this many bits (`None` = no
    /// volume limit). Used by incast workloads where each server answers
    /// with a fixed-size block.
    pub volume_bits: Option<f64>,
}

impl FlowSpec {
    /// A flow that starts at time zero with the given rate and never
    /// stops.
    #[must_use]
    pub fn immediate(initial_rate: f64) -> Self {
        Self { start: Time::ZERO, stop: None, initial_rate, volume_bits: None }
    }

    /// Whether the flow is active at time `t`.
    #[must_use]
    pub fn active_at(&self, t: Time) -> bool {
        t >= self.start && self.stop.is_none_or(|s| t < s)
    }
}

/// `n` homogeneous flows all starting at time zero at the given rate —
/// the paper's canonical workload.
#[must_use]
pub fn homogeneous(n: usize, initial_rate: f64) -> Vec<FlowSpec> {
    vec![FlowSpec::immediate(initial_rate); n]
}

/// `n` flows starting one after another, `stagger_secs` apart — the
/// fairness workload (late joiners must converge to the fair share).
#[must_use]
pub fn staggered(n: usize, initial_rate: f64, stagger_secs: f64) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec {
            start: Time::from_secs(stagger_secs * i as f64),
            stop: None,
            initial_rate,
            volume_bits: None,
        })
        .collect()
}

/// `n` flows where the first `n_short` stop at `stop_secs` — a
/// departure-transient workload.
#[must_use]
pub fn with_departures(
    n: usize,
    n_short: usize,
    initial_rate: f64,
    stop_secs: f64,
) -> Vec<FlowSpec> {
    (0..n)
        .map(|i| FlowSpec {
            start: Time::ZERO,
            stop: (i < n_short).then(|| Time::from_secs(stop_secs)),
            initial_rate,
            volume_bits: None,
        })
        .collect()
}

/// The cluster-file-system incast pattern motivating the paper's traffic
/// assumption: `n` servers answer a parallel read simultaneously, each
/// with a `block_bits` response at `initial_rate`.
#[must_use]
pub fn incast(n: usize, initial_rate: f64, block_bits: f64) -> Vec<FlowSpec> {
    (0..n)
        .map(|_| FlowSpec {
            start: Time::ZERO,
            stop: None,
            initial_rate,
            volume_bits: Some(block_bits),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_flows_are_identical_and_immediate() {
        let flows = homogeneous(5, 1_000.0);
        assert_eq!(flows.len(), 5);
        for f in &flows {
            assert_eq!(f.start, Time::ZERO);
            assert!(f.stop.is_none());
            assert!(f.active_at(Time::from_secs(100.0)));
        }
    }

    #[test]
    fn staggered_starts_are_spaced() {
        let flows = staggered(3, 1_000.0, 0.5);
        assert_eq!(flows[0].start, Time::ZERO);
        assert_eq!(flows[1].start, Time::from_secs(0.5));
        assert_eq!(flows[2].start, Time::from_secs(1.0));
        assert!(!flows[2].active_at(Time::from_secs(0.9)));
        assert!(flows[2].active_at(Time::from_secs(1.0)));
    }

    #[test]
    fn incast_flows_carry_volume_limits() {
        let flows = incast(8, 1_000.0, 96_000.0);
        assert_eq!(flows.len(), 8);
        for f in &flows {
            assert_eq!(f.volume_bits, Some(96_000.0));
            assert_eq!(f.start, Time::ZERO);
        }
    }

    #[test]
    fn departures_deactivate_short_flows() {
        let flows = with_departures(4, 2, 1_000.0, 1.0);
        assert!(flows[0].stop.is_some() && flows[1].stop.is_some());
        assert!(flows[2].stop.is_none());
        assert!(!flows[0].active_at(Time::from_secs(1.0)));
        assert!(flows[0].active_at(Time::from_secs(0.99)));
    }
}
