//! BCN message wire format (paper Fig. 2).
//!
//! The paper's Fig. 2 lays out the BCN frame: destination address (the
//! sampled frame's source), source address (the switch), an 802.1Q VLAN
//! tag for coexistence with BCN-unaware switches, the BCN EtherType, the
//! congestion-point identifier (CPID — "should at least include the MAC
//! address of the switch interface"), and the FB field carrying the
//! congestion measure `sigma`. This module is an executable rendition of
//! that figure: fixed-offset encode/decode with the FB field quantized
//! to a signed fixed-point value, plus the quantization helpers used by
//! the feedback-precision ablation.

use crate::frame::{BcnMessage, CpId, SourceId};

/// Total encoded size of a BCN message body in bytes:
/// DA(6) + SA(6) + 802.1Q(4) + EtherType(2) + CPID(8) + FB(4).
pub const BCN_FRAME_BYTES: usize = 30;

/// The (unassigned, documentation-value) EtherType used to mark BCN
/// messages.
pub const BCN_ETHERTYPE: u16 = 0x8948;

/// The 802.1Q Tag Protocol Identifier.
pub const TPID_8021Q: u16 = 0x8100;

/// Errors raised when decoding a BCN frame.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The byte slice is shorter than [`BCN_FRAME_BYTES`].
    Truncated {
        /// Bytes available.
        len: usize,
    },
    /// The EtherType field does not mark a BCN message.
    WrongEtherType {
        /// The value found.
        found: u16,
    },
    /// The 802.1Q tag is missing (required for BCN-unaware coexistence).
    MissingVlanTag,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { len } => {
                write!(f, "frame truncated: {len} bytes, need {BCN_FRAME_BYTES}")
            }
            WireError::WrongEtherType { found } => {
                write!(f, "ethertype {found:#06x} is not a BCN message")
            }
            WireError::MissingVlanTag => write!(f, "802.1q vlan tag missing"),
        }
    }
}

impl std::error::Error for WireError {}

/// Fixed-point scale of the FB field: `sigma` is carried in units of
/// this many bits of queue (64 bytes), giving ±2^31 * 512 bits ≈ ±1 Tbit
/// of range — far beyond any real buffer.
pub const FB_UNIT_BITS: f64 = 512.0;

/// Encodes a BCN message into its Fig. 2 wire form.
///
/// The reaction-point address is synthesised from the [`SourceId`] (the
/// simulator's hosts do not carry full MACs); the switch address is
/// derived from the CPID's low bytes exactly as the paper prescribes the
/// CPID to contain the switch interface MAC.
#[must_use]
pub fn encode(msg: &BcnMessage) -> [u8; BCN_FRAME_BYTES] {
    let mut out = [0u8; BCN_FRAME_BYTES];
    // DA: the sampled frame's source (locally administered unicast MAC).
    out[0] = 0x02;
    out[2..6].copy_from_slice(&msg.dst.0.to_be_bytes());
    // SA: switch interface MAC from the CPID low 6 bytes.
    let cpid = msg.cpid.0.to_be_bytes();
    out[6] = 0x02;
    out[7..12].copy_from_slice(&cpid[3..8]);
    // 802.1Q tag: TPID + priority 6 (network control), VID 1.
    out[12..14].copy_from_slice(&TPID_8021Q.to_be_bytes());
    out[14..16].copy_from_slice(&(0xC001u16).to_be_bytes());
    // EtherType.
    out[16..18].copy_from_slice(&BCN_ETHERTYPE.to_be_bytes());
    // CPID, 8 bytes.
    out[18..26].copy_from_slice(&cpid);
    // FB: sigma quantized to signed fixed point, saturating.
    let fb =
        (msg.sigma / FB_UNIT_BITS).round().clamp(f64::from(i32::MIN), f64::from(i32::MAX)) as i32;
    out[26..30].copy_from_slice(&fb.to_be_bytes());
    out
}

/// Decodes a Fig. 2 wire frame back into a [`BcnMessage`].
///
/// # Errors
///
/// Returns [`WireError`] on short input, a missing VLAN tag, or a
/// foreign EtherType.
pub fn decode(bytes: &[u8]) -> Result<BcnMessage, WireError> {
    if bytes.len() < BCN_FRAME_BYTES {
        return Err(WireError::Truncated { len: bytes.len() });
    }
    let tpid = u16::from_be_bytes([bytes[12], bytes[13]]);
    if tpid != TPID_8021Q {
        return Err(WireError::MissingVlanTag);
    }
    let ethertype = u16::from_be_bytes([bytes[16], bytes[17]]);
    if ethertype != BCN_ETHERTYPE {
        return Err(WireError::WrongEtherType { found: ethertype });
    }
    let dst = SourceId(u32::from_be_bytes([bytes[2], bytes[3], bytes[4], bytes[5]]));
    let mut cpid = [0u8; 8];
    cpid.copy_from_slice(&bytes[18..26]);
    let fb = i32::from_be_bytes([bytes[26], bytes[27], bytes[28], bytes[29]]);
    Ok(BcnMessage {
        dst,
        cpid: CpId(u64::from_be_bytes(cpid)),
        sigma: f64::from(fb) * FB_UNIT_BITS,
    })
}

/// Quantizes a raw `sigma` (bits) to a signed field of `bits` width with
/// saturating range `±range_bits` — the precision knob of the FB field
/// (QCN pushed this to 6 bits; the ablation experiment sweeps it).
///
/// # Panics
///
/// Panics unless `2 <= bits <= 32` and `range_bits > 0`.
#[must_use]
pub fn quantize_sigma(sigma: f64, bits: u32, range_bits: f64) -> f64 {
    assert!((2..=32).contains(&bits), "field width must be 2..=32 bits");
    assert!(range_bits > 0.0, "range must be positive");
    let levels = f64::from((1u32 << (bits - 1)) - 1); // symmetric signed range
    let norm = (sigma / range_bits).clamp(-1.0, 1.0);
    (norm * levels).round() / levels * range_bits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(sigma: f64) -> BcnMessage {
        BcnMessage { dst: SourceId(0x0A0B_0C0D), cpid: CpId(0x1122_3344_5566_7788), sigma }
    }

    #[test]
    fn roundtrip_preserves_fields() {
        for sigma in [-1.5e6, -512.0, 0.0, 512.0, 2.3e6] {
            let m = msg(sigma);
            let decoded = decode(&encode(&m)).unwrap();
            assert_eq!(decoded.dst, m.dst);
            assert_eq!(decoded.cpid, m.cpid);
            // FB quantizes to the 512-bit unit.
            assert!(
                (decoded.sigma - m.sigma).abs() <= FB_UNIT_BITS / 2.0,
                "sigma {sigma} -> {}",
                decoded.sigma
            );
        }
    }

    #[test]
    fn polarity_survives_quantization_for_meaningful_sigma() {
        let m = msg(-700.0);
        assert!(!decode(&encode(&m)).unwrap().is_positive());
        let m = msg(700.0);
        assert!(decode(&encode(&m)).unwrap().is_positive());
    }

    #[test]
    fn single_bit_corruption_never_panics_and_stays_decodable_or_rejected() {
        // The fault layer flips arbitrary bits in transit; the codec
        // must survive every one of them. Exhaustive over all 240
        // single-bit flips of a representative frame: decode either
        // rejects the frame with a typed error or yields a message
        // whose fields are still sane enough to re-encode.
        let base = encode(&msg(1.5e6));
        for pos in 0..BCN_FRAME_BYTES {
            for bit in 0..8u8 {
                let mut bytes = base;
                bytes[pos] ^= 1u8 << bit;
                match decode(&bytes) {
                    Ok(m) => {
                        assert!(m.sigma.is_finite(), "byte {pos} bit {bit}");
                        let _ = encode(&m);
                    }
                    Err(e) => {
                        assert!(!e.to_string().is_empty(), "byte {pos} bit {bit}");
                    }
                }
            }
        }
    }

    #[test]
    fn decode_rejects_short_frames() {
        let err = decode(&[0u8; 10]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { len: 10 }));
    }

    #[test]
    fn decode_rejects_foreign_frames() {
        let mut bytes = encode(&msg(0.0));
        bytes[16] = 0x08; // EtherType -> IPv4-ish
        bytes[17] = 0x00;
        assert!(matches!(decode(&bytes), Err(WireError::WrongEtherType { .. })));
        let mut bytes = encode(&msg(0.0));
        bytes[12] = 0;
        bytes[13] = 0;
        assert!(matches!(decode(&bytes), Err(WireError::MissingVlanTag)));
    }

    #[test]
    fn sa_carries_switch_mac_from_cpid() {
        let bytes = encode(&msg(0.0));
        // CPID low five bytes land in the SA field (after the local bit).
        assert_eq!(&bytes[7..12], &[0x44, 0x55, 0x66, 0x77, 0x88]);
    }

    #[test]
    fn fb_saturates_instead_of_wrapping() {
        let m = msg(1e18);
        let decoded = decode(&encode(&m)).unwrap();
        assert!(decoded.sigma > 0.0);
        assert!(decoded.sigma < 2e12, "saturated, not wrapped: {}", decoded.sigma);
    }

    #[test]
    fn quantizer_grids_and_saturates() {
        // 6-bit field (QCN's choice): 31 positive levels.
        let range = 1.0e6;
        let q = quantize_sigma(123_456.0, 6, range);
        let levels = 31.0;
        let steps = q / range * levels;
        assert!((steps - steps.round()).abs() < 1e-9, "off grid: {q}");
        assert_eq!(quantize_sigma(9.0e9, 6, range), range);
        assert_eq!(quantize_sigma(-9.0e9, 6, range), -range);
        // Sign preserved for values above half a step.
        assert!(quantize_sigma(range / 31.0, 6, range) > 0.0);
    }

    #[test]
    #[should_panic(expected = "field width")]
    fn quantizer_rejects_silly_widths() {
        let _ = quantize_sigma(0.0, 1, 1.0);
    }

    #[test]
    fn congestion_point_messages_survive_the_wire() {
        // End-to-end: a real congestion point's messages, encoded to the
        // Fig. 2 frame and decoded back, drive the reaction point the
        // same way (up to FB fixed-point rounding).
        use crate::cp::{CongestionPoint, CpConfig};
        use crate::frame::DataFrame;
        let mut cp = CongestionPoint::new(CpConfig {
            cpid: CpId(0xAABB_CCDD_EEFF_0011),
            q0_bits: 100_000.0,
            qsc_bits: 400_000.0,
            w: 2.0,
            sample_every: 1,
            fb_quant: None,
            gate_positive: false,
        });
        let mut produced = 0;
        for (q, src) in [(250_000.0, 1u32), (40_000.0, 2), (180_000.0, 3)] {
            let frame = DataFrame { src: SourceId(src), bits: 12_000.0, rrt: None };
            if let Some(m) = cp.on_arrival(&frame, q) {
                produced += 1;
                let rt = decode(&encode(&m)).unwrap();
                assert_eq!(rt.dst, m.dst);
                assert_eq!(rt.cpid, m.cpid);
                assert!((rt.sigma - m.sigma).abs() <= FB_UNIT_BITS / 2.0);
                assert_eq!(rt.is_positive(), m.is_positive());
            }
        }
        assert!(produced >= 2, "expected multiple messages, got {produced}");
    }
}
