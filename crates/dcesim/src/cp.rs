//! The BCN congestion point (core-switch side, paper Section II-B).
//!
//! The congestion point monitors one bottleneck queue. It samples
//! arriving data frames deterministically (every `1/pm`-th frame), and at
//! each sample computes the congestion measure over the elapsed sampling
//! interval (paper Eq. 1):
//!
//! ```text
//! sigma = (q0 - q) - w * dq,     dq = arrivals - departures (bits)
//! ```
//!
//! A *negative* `sigma` always produces a negative BCN message back to
//! the sampled frame's source. A *positive* `sigma` produces a positive
//! BCN message only when the sampled frame carries a rate-regulator tag
//! matching this congestion point **and** the queue is below the
//! reference (`q < q0`) — sources that were never told to slow down are
//! never told to speed up.
//!
//! Above the severe-congestion threshold `q_sc` the switch additionally
//! asserts IEEE 802.3x PAUSE towards its uplinks.

use crate::error::ConfigError;
use crate::frame::{BcnMessage, CpId, DataFrame};
use crate::wire::quantize_sigma;

/// FB-field quantization applied to `sigma` before it is sent (the
/// paper's Fig. 2 FB field has finite width; QCN narrows it to 6 bits).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FbQuant {
    /// Signed field width in bits (2..=32).
    pub bits: u32,
    /// Saturation range in queue bits (values beyond clamp to the rails).
    pub range_bits: f64,
}

/// Configuration of a congestion point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpConfig {
    /// This congestion point's identity (CPID field of its messages).
    pub cpid: CpId,
    /// Queue reference point `q0` in bits.
    pub q0_bits: f64,
    /// Severe-congestion (PAUSE) threshold in bits.
    pub qsc_bits: f64,
    /// Weight of the queue-variation term, applied to the raw bit count
    /// `dq` accumulated over one sampling interval. To emulate the fluid
    /// model's `w` (which is defined against a unit-packet abstraction),
    /// use `w_fluid / frame_bits`.
    pub w: f64,
    /// Sample every `sample_every`-th arriving data frame
    /// (`= round(1/pm)`).
    pub sample_every: u64,
    /// Optional FB-field quantization (see [`FbQuant`]); `None` sends
    /// `sigma` at full float precision (the fluid-model idealisation).
    pub fb_quant: Option<FbQuant>,
    /// Protocol-faithful gating of positive feedback: when `true`
    /// (the BCN draft behaviour), a positive message is sent only to a
    /// source whose sampled frame carries this congestion point's tag
    /// *and* only while `q < q0`. When `false`, positive feedback follows
    /// the sign of `sigma` unconditionally — the behaviour the paper's
    /// fluid model (Eq. 7) assumes; used by the fluid-calibrated
    /// validation runs.
    pub gate_positive: bool,
}

impl CpConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] on non-finite or non-positive
    /// thresholds, a zero sampling divisor, or a bad FB quantizer.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.q0_bits.is_finite() && self.q0_bits > 0.0) {
            return Err(ConfigError::new("cp.q0_bits", "q0 must be positive"));
        }
        if !(self.qsc_bits.is_finite() && self.qsc_bits >= self.q0_bits) {
            return Err(ConfigError::new("cp.qsc_bits", "q_sc must be at or above q0"));
        }
        if !(self.w.is_finite() && self.w >= 0.0) {
            return Err(ConfigError::new("cp.w", "w must be non-negative"));
        }
        if self.sample_every < 1 {
            return Err(ConfigError::new("cp.sample_every", "sampling divisor must be at least 1"));
        }
        if let Some(q) = self.fb_quant {
            if !(2..=32).contains(&q.bits) {
                return Err(ConfigError::new(
                    "cp.fb_quant.bits",
                    "field width must be 2..=32 bits",
                ));
            }
            if !(q.range_bits.is_finite() && q.range_bits > 0.0) {
                return Err(ConfigError::new("cp.fb_quant.range_bits", "range must be positive"));
            }
        }
        Ok(())
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on non-positive thresholds or a zero sampling divisor
    /// (the panicking form of [`CpConfig::validate`]).
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("{e}");
        }
    }
}

/// Runtime state of a congestion point.
#[derive(Debug, Clone, PartialEq)]
pub struct CongestionPoint {
    cfg: CpConfig,
    countdown: u64,
    arrived_bits: f64,
    departed_bits: f64,
    samples_taken: u64,
    messages_sent: u64,
}

impl CongestionPoint {
    /// Creates a congestion point.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new(cfg: CpConfig) -> Self {
        cfg.assert_valid();
        let countdown = cfg.sample_every;
        Self {
            cfg,
            countdown,
            arrived_bits: 0.0,
            departed_bits: 0.0,
            samples_taken: 0,
            messages_sent: 0,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &CpConfig {
        &self.cfg
    }

    /// Records a departure (bits dequeued onto the output link).
    pub fn on_departure(&mut self, bits: f64) {
        self.departed_bits += bits;
    }

    /// Restarts the sampling interval: countdown and arrival/departure
    /// accumulators reset as if a sample had just been taken. The hybrid
    /// engine calls this at a fluid→packet re-seed so the first
    /// post-epoch `sigma` measures only post-epoch traffic.
    pub(crate) fn restart_interval(&mut self) {
        self.countdown = self.cfg.sample_every;
        self.arrived_bits = 0.0;
        self.departed_bits = 0.0;
    }

    /// Processes an *accepted* arriving data frame against the current
    /// queue occupancy `q_bits` (after enqueue). Returns a BCN message to
    /// send back, if this frame was sampled and the rules produce one.
    pub fn on_arrival(&mut self, frame: &DataFrame, q_bits: f64) -> Option<BcnMessage> {
        self.arrived_bits += frame.bits;
        self.countdown -= 1;
        if self.countdown > 0 {
            return None;
        }
        self.countdown = self.cfg.sample_every;
        self.samples_taken += 1;

        let dq = self.arrived_bits - self.departed_bits;
        self.arrived_bits = 0.0;
        self.departed_bits = 0.0;

        let mut sigma = (self.cfg.q0_bits - q_bits) - self.cfg.w * dq;
        if let Some(q) = self.cfg.fb_quant {
            sigma = quantize_sigma(sigma, q.bits, q.range_bits);
        }
        let positive_allowed = !self.cfg.gate_positive
            || (frame.rrt == Some(self.cfg.cpid) && q_bits < self.cfg.q0_bits);
        let send = sigma < 0.0 || (sigma > 0.0 && positive_allowed);
        let msg = send.then_some(BcnMessage { dst: frame.src, cpid: self.cfg.cpid, sigma });
        if msg.is_some() {
            self.messages_sent += 1;
        }
        msg
    }

    /// Whether the queue occupancy warrants an 802.3x PAUSE.
    #[must_use]
    pub fn should_pause(&self, q_bits: f64) -> bool {
        q_bits > self.cfg.qsc_bits
    }

    /// Number of frames sampled so far.
    #[must_use]
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Number of BCN messages emitted so far.
    #[must_use]
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SourceId;

    fn cfg() -> CpConfig {
        CpConfig {
            cpid: CpId(7),
            q0_bits: 10_000.0,
            qsc_bits: 40_000.0,
            w: 2.0,
            sample_every: 4,
            fb_quant: None,
            gate_positive: true,
        }
    }

    fn frame(src: u32, rrt: Option<CpId>) -> DataFrame {
        DataFrame { src: SourceId(src), bits: 1_000.0, rrt }
    }

    #[test]
    fn samples_every_nth_frame() {
        let mut cp = CongestionPoint::new(cfg());
        // Queue far above q0: the 4th frame must produce a negative BCN.
        for i in 1..=3 {
            assert!(cp.on_arrival(&frame(i, None), 30_000.0).is_none());
        }
        let msg = cp.on_arrival(&frame(9, None), 30_000.0).expect("sampled");
        assert!(!msg.is_positive());
        assert_eq!(msg.dst, SourceId(9));
        assert_eq!(msg.cpid, CpId(7));
        assert_eq!(cp.samples_taken(), 1);
    }

    #[test]
    fn sigma_uses_queue_offset_and_variation() {
        let mut cp = CongestionPoint::new(CpConfig { sample_every: 1, ..cfg() });
        // One arrival of 1000 bits, no departures: dq = 1000.
        // q = 5000 < q0 = 10000: sigma = (10000 - 5000) - 2*1000 = 3000.
        let msg = cp.on_arrival(&frame(1, Some(CpId(7))), 5_000.0).expect("sampled");
        assert!((msg.sigma - 3_000.0).abs() < 1e-9);
        assert!(msg.is_positive());
    }

    #[test]
    fn departures_reduce_dq() {
        let mut cp = CongestionPoint::new(CpConfig { sample_every: 1, ..cfg() });
        cp.on_departure(1_000.0);
        // dq = 1000 - 1000 = 0: sigma = q0 - q.
        let msg = cp.on_arrival(&frame(1, None), 15_000.0).expect("negative");
        assert!((msg.sigma + 5_000.0).abs() < 1e-9);
    }

    #[test]
    fn positive_bcn_requires_matching_tag_and_low_queue() {
        let mk = || CongestionPoint::new(CpConfig { sample_every: 1, ..cfg() });
        // Untagged frame, sigma > 0: no message.
        let mut cp = mk();
        assert!(cp.on_arrival(&frame(1, None), 1_000.0).is_none());
        // Wrong CPID: no message.
        let mut cp = mk();
        assert!(cp.on_arrival(&frame(1, Some(CpId(99))), 1_000.0).is_none());
        // Matching tag but q >= q0: no message even if sigma > 0 via dq.
        let mut cp = mk();
        cp.on_departure(50_000.0); // dq very negative => sigma > 0
        assert!(cp.on_arrival(&frame(1, Some(CpId(7))), 12_000.0).is_none());
        // Matching tag, low queue: positive message.
        let mut cp = mk();
        let msg = cp.on_arrival(&frame(1, Some(CpId(7))), 1_000.0);
        assert!(msg.expect("positive").is_positive());
    }

    #[test]
    fn counters_reset_each_sample() {
        let mut cp = CongestionPoint::new(CpConfig { sample_every: 2, ..cfg() });
        let _ = cp.on_arrival(&frame(1, None), 20_000.0);
        let first = cp.on_arrival(&frame(2, None), 20_000.0).expect("sample 1");
        // dq over first interval = 2000 bits.
        assert!((first.sigma - ((10_000.0 - 20_000.0) - 2.0 * 2_000.0)).abs() < 1e-9);
        let _ = cp.on_arrival(&frame(3, None), 20_000.0);
        let second = cp.on_arrival(&frame(4, None), 20_000.0).expect("sample 2");
        assert_eq!(first.sigma, second.sigma, "interval counters must reset");
    }

    #[test]
    fn pause_threshold() {
        let cp = CongestionPoint::new(cfg());
        assert!(!cp.should_pause(39_000.0));
        assert!(cp.should_pause(41_000.0));
    }

    #[test]
    fn fb_quantization_grids_the_feedback() {
        let mut cp = CongestionPoint::new(CpConfig {
            sample_every: 1,
            gate_positive: false,
            fb_quant: Some(FbQuant { bits: 4, range_bits: 16_000.0 }),
            ..cfg()
        });
        let msg = cp.on_arrival(&frame(1, None), 5_000.0).expect("sampled");
        // 4-bit signed field: 7 positive levels over the range.
        let steps = msg.sigma / 16_000.0 * 7.0;
        assert!((steps - steps.round()).abs() < 1e-9, "sigma {} off grid", msg.sigma);
    }

    #[test]
    fn ungated_mode_sends_positive_feedback_to_anyone() {
        let mut cp =
            CongestionPoint::new(CpConfig { sample_every: 1, gate_positive: false, ..cfg() });
        let msg = cp.on_arrival(&frame(1, None), 1_000.0).expect("ungated positive");
        assert!(msg.is_positive());
    }

    #[test]
    #[should_panic(expected = "q_sc must be at or above q0")]
    fn rejects_qsc_below_q0() {
        let bad = CpConfig { qsc_bits: 1.0, ..cfg() };
        let _ = CongestionPoint::new(bad);
    }

    #[test]
    fn validate_reports_typed_errors() {
        assert!(cfg().validate().is_ok());
        let err = CpConfig { q0_bits: f64::NAN, ..cfg() }.validate().unwrap_err();
        assert_eq!(err.field, "cp.q0_bits");
        let err = CpConfig { sample_every: 0, ..cfg() }.validate().unwrap_err();
        assert_eq!(err.field, "cp.sample_every");
        let err = CpConfig { fb_quant: Some(FbQuant { bits: 1, range_bits: 1.0 }), ..cfg() }
            .validate()
            .unwrap_err();
        assert_eq!(err.field, "cp.fb_quant.bits");
    }
}
