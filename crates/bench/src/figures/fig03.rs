//! Fig. 3 — taxonomy of phase trajectories against strong stability.
//!
//! The paper's Fig. 3 sketches nine qualitative trajectory classes
//! (l1–l9) and argues which are *strongly* stable (queue stays strictly
//! inside `(0, B)`). This generator produces concrete representatives of
//! the realizable classes from actual parameterisations:
//!
//! * a contracting Case-1 spiral that stays inside the walls (the
//!   strongly stable l6);
//! * a contracting spiral whose transient *escapes* the walls — stable in
//!   the classical sense, not strongly stable (l3/l4: the buffer pins the
//!   physical queue, dropping packets);
//! * the limit-cycle pair (l5/l7) at the undamped `w -> 0` boundary;
//! * node-shaped monotone approaches (l8/l9, Cases 3/4).

use std::path::Path;

use bcn::cases::{classify_params, exemplar};
use bcn::simulate::SaturatingFluid;
use bcn::stability::{criterion, exact_verdict};
use bcn::{BcnFluid, BcnParams, CaseId};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Series, Table};

use crate::common::{banner, out_dir, phase_plot, save_plot, trace};
use crate::ExpResult;

/// Runs the generator; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Fig. 3: trajectory taxonomy vs strong stability");
    let base = BcnParams::test_defaults();

    // Class representatives: (label, params, horizon seconds).
    let tight_buffer = {
        let fr = bcn::rounds::first_round(&base).expect("case 1");
        base.q0 + 0.45 * fr.max1_x
    };
    let reps: Vec<(&str, BcnParams, f64)> = vec![
        ("l6: strongly stable spiral", base.clone(), 1.2),
        ("l3/l4: overshoot hits the walls", base.clone().with_buffer(tight_buffer), 1.2),
        ("l5/l7: limit cycle (w -> 0)", base.clone().with_w(1e-9), 1.2),
        ("l8/l9: node approach (case 4)", exemplar(&base, CaseId::Case4), 4.0),
    ];

    let mut table = Table::new(&[
        "class",
        "case",
        "criterion verdict",
        "exact strongly stable",
        "fluid drops (bits)",
    ]);
    let mut series = Vec::new();
    for (i, (label, params, horizon)) in reps.iter().enumerate() {
        let sys = BcnFluid::linearized(params.clone());
        let tr = trace(&sys, params.initial_point(), *horizon, 1500);
        series.push(Series::line(label, &tr.xs, &tr.ys, COLOR_CYCLE[i]));

        let verdict = criterion(params);
        let exact = exact_verdict(params, 40);
        let drops =
            SaturatingFluid::linearized(params.clone()).run_canonical(*horizon).dropped_bits;
        table.row(&[
            (*label).to_string(),
            classify_params(params).case.to_string(),
            if verdict.is_guaranteed() {
                "strongly stable".into()
            } else {
                "not guaranteed".into()
            },
            exact.strongly_stable.to_string(),
            format!("{drops:.0}"),
        ]);
    }
    print!("{table}");

    let plot = phase_plot("Fig. 3: phase-trajectory taxonomy", &base, series);
    save_plot(&plot, out, "fig03_taxonomy.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fig03_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("fig03_taxonomy.svg").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
