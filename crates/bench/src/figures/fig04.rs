//! Fig. 4 — logarithmic-spiral phase trajectories (`m^2 - 4n < 0`) with
//! the local extrema `max_x^s` / `min_x^s` marked.
//!
//! Reproduces the paper's two representative branches: one starting with
//! `y(0) > 0` (whose first extremum is a maximum, Eq. 19) and one with
//! `y(0) < 0` (first extremum a minimum, Eq. 20). The generator also
//! cross-checks the printed extremum formulas against the matrix
//! exponential flow and reports the agreement.

use std::path::Path;

use bcn::closed_form::{RegionFlow, Spectrum};
use bcn::extrema::{spiral_extremum, spiral_extremum_paper};
use bcn::model::Region;
use bcn::{BcnFluid, BcnParams};
use plotkit::svg::COLOR_CYCLE;
use plotkit::{Csv, Series, SvgPlot, Table};

use crate::common::{banner, out_dir, save_plot};
use crate::ExpResult;

/// Runs the generator; artifacts land under `out`.
///
/// # Errors
///
/// Propagates I/O failures while writing artifacts.
pub fn run(out: &Path) -> ExpResult {
    banner("Fig. 4: logarithmic-spiral trajectories and their extrema");
    let params = BcnParams::test_defaults();
    let sys = BcnFluid::linearized(params.clone());
    let flow = RegionFlow::from_kn(params.k(), sys.region_n(Region::Increase));
    let Spectrum::Focus { alpha, beta } = flow.spectrum() else {
        return Err("increase region is not spiral-shaped".into());
    };
    println!("increase-region spectrum: alpha = {alpha:.4}, beta = {beta:.4}");

    // The paper's two branches: y(0) < 0 (min first) and y(0) > 0 (max
    // first), mirroring Fig. 4's (x1, y1) and (x2, y2).
    let starts = [
        ("start y(0) < 0", [0.6 * params.q0, -0.15 * params.capacity]),
        ("start y(0) > 0", [-0.8 * params.q0, 0.12 * params.capacity]),
    ];

    let mut plot =
        SvgPlot::new("Fig. 4: spiral trajectories (m^2 - 4n < 0)", "x (bits)", "y (bit/s)");
    let mut csv = Csv::new(&["trajectory", "t", "x", "y"]);
    let mut table =
        Table::new(&["start", "t* (robust)", "t* (Eq.18)", "x* (robust)", "x* (Eq.19/20)"]);

    for (idx, (label, z0)) in starts.iter().enumerate() {
        let span = 3.0 * std::f64::consts::TAU / beta;
        let n = 1200;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let t = span * i as f64 / (n - 1) as f64;
            let z = flow.at(t, *z0);
            xs.push(z[0]);
            ys.push(z[1]);
            csv.row(&[idx as f64, t, z[0], z[1]]);
        }
        plot = plot.with_series(Series::line(label, &xs, &ys, COLOR_CYCLE[idx]));

        let robust = spiral_extremum(alpha, beta, *z0).expect("spiral extremum");
        let paper = spiral_extremum_paper(alpha, beta, *z0).expect("paper formula");
        plot = plot.with_series(Series::scatter(
            &format!("extremum of {label}"),
            &[robust.x],
            &[0.0],
            COLOR_CYCLE[idx + 4],
        ));
        table.row_f64(&[z0[0], robust.t, paper.t, robust.x, paper.x]);
    }
    print!("{table}");

    csv.save(out.join("fig04_spiral.csv"))?;
    println!("wrote {}", out.join("fig04_spiral.csv").display());
    save_plot(&plot, out, "fig04_spiral.svg")?;
    Ok(())
}

/// Runs with the default output directory.
///
/// # Errors
///
/// See [`run`].
pub fn main() -> ExpResult {
    run(&out_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_runs_and_writes_artifacts() {
        let dir = std::env::temp_dir().join("fig04_test");
        let _ = std::fs::remove_dir_all(&dir);
        run(&dir).unwrap();
        assert!(dir.join("fig04_spiral.svg").exists());
        assert!(dir.join("fig04_spiral.csv").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
