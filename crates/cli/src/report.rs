//! The `dcebcn report` pipeline: turn a run's telemetry — live or
//! decoded from a JSONL trace file — into a JSON summary, SVG timelines
//! (queue/rate lanes with causal span bands and fault markers), and a
//! Prometheus-style text export.
//!
//! Rendering is pure (telemetry in, strings out) so the pipeline is
//! testable without touching the filesystem; the `report` command owns
//! the I/O.

use std::fmt::Write as _;

use plotkit::svg::COLOR_CYCLE;
use plotkit::{Series, SvgPlot};
use telemetry::{Event, SeriesKind, SpanKind, Telemetry};

/// The color used for PAUSE-episode span bands.
const PAUSE_BAND_COLOR: &str = "#d62728";
/// The color used for hybrid fast-forward epoch bands.
const HYBRID_BAND_COLOR: &str = "#2ca02c";
/// The color used for fault-injection markers.
const FAULT_MARK_COLOR: &str = "#7f7f7f";

/// The rendered artifacts of one report run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArtifacts {
    /// Machine-readable run summary.
    pub summary_json: String,
    /// Queue-depth timeline with PAUSE span bands and fault markers.
    pub queue_svg: String,
    /// Per-flow rate (or feedback) timeline with the same span bands.
    pub rate_svg: String,
    /// Prometheus text-format metrics export.
    pub prometheus: String,
}

/// A closed (or horizon-truncated) span recovered from the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SpanInterval {
    t0: f64,
    t1: f64,
    kind: SpanKind,
    entity: u32,
}

/// Pairs `SpanBegin`/`SpanEnd` events by id. Spans still open at the
/// end of the trace extend to the last event's timestamp.
fn span_intervals(tel: &Telemetry) -> Vec<SpanInterval> {
    let mut open: Vec<(u64, SpanInterval)> = Vec::new();
    let mut out = Vec::new();
    let mut t_last = f64::NEG_INFINITY;
    for e in tel.trace.iter() {
        t_last = t_last.max(e.time());
        match *e {
            Event::SpanBegin { t, id, kind, entity, .. } => {
                open.push((id, SpanInterval { t0: t, t1: t, kind, entity }));
            }
            Event::SpanEnd { t, id } => {
                if let Some(pos) = open.iter().rposition(|(oid, _)| *oid == id) {
                    let (_, mut span) = open.swap_remove(pos);
                    span.t1 = t;
                    out.push(span);
                }
            }
            _ => {}
        }
    }
    for (_, mut span) in open {
        span.t1 = t_last.max(span.t0);
        out.push(span);
    }
    out.sort_by(|a, b| a.t0.total_cmp(&b.t0));
    out
}

/// Adds the PAUSE-episode bands and fault-injection markers every
/// timeline shares.
fn with_annotations(mut plot: SvgPlot, tel: &Telemetry, spans: &[SpanInterval]) -> SvgPlot {
    for s in spans.iter().filter(|s| s.kind == SpanKind::PauseEpisode) {
        plot = plot.with_band(s.t0, s.t1, PAUSE_BAND_COLOR, "PAUSE");
    }
    // Hybrid fast-forward epochs render as translucent bands too, so the
    // analytic stretches are visually distinct from packet-simulated ones.
    for s in spans.iter().filter(|s| s.kind == SpanKind::HybridEpoch) {
        plot = plot.with_band(s.t0, s.t1, HYBRID_BAND_COLOR, "FF");
    }
    for e in tel.trace.iter() {
        if let Event::FaultInjected { t, .. } = e {
            plot = plot.with_vline(*t, FAULT_MARK_COLOR);
        }
    }
    plot
}

/// The queue timeline: one lane per queue-depth series entity, falling
/// back to `QueueExtremum` scatter points when the telemetry carries no
/// series (a trace decoded from JSONL).
fn queue_plot(tel: &Telemetry, spans: &[SpanInterval]) -> SvgPlot {
    let mut plot = SvgPlot::new("queue depth", "t (s)", "q (bits)");
    let mut lanes = 0;
    for (kind, entity, series) in tel.series.iter() {
        if kind != SeriesKind::QueueDepth || series.is_empty() {
            continue;
        }
        let (xs, ys): (Vec<f64>, Vec<f64>) = series.points().iter().copied().unzip();
        let color = COLOR_CYCLE[lanes % COLOR_CYCLE.len()];
        plot = plot.with_series(Series::line(&format!("queue[{entity}]"), &xs, &ys, color));
        lanes += 1;
    }
    if lanes == 0 {
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for e in tel.trace.iter() {
            if let Event::QueueExtremum { t, q, .. } = e {
                xs.push(*t);
                ys.push(*q);
            }
        }
        if !xs.is_empty() {
            plot = plot.with_series(Series::scatter("queue extrema", &xs, &ys, COLOR_CYCLE[0]));
        }
    }
    with_annotations(plot, tel, spans)
}

/// The rate timeline: one lane per flow-rate series entity, falling
/// back to BCN feedback values when no series is available.
fn rate_plot(tel: &Telemetry, spans: &[SpanInterval]) -> SvgPlot {
    let mut plot = SvgPlot::new("per-flow rate", "t (s)", "rate (bit/s)");
    let mut lanes = 0;
    for (kind, entity, series) in tel.series.iter() {
        if kind != SeriesKind::FlowRate || series.is_empty() {
            continue;
        }
        let (xs, ys): (Vec<f64>, Vec<f64>) = series.points().iter().copied().unzip();
        let color = COLOR_CYCLE[lanes % COLOR_CYCLE.len()];
        plot = plot.with_series(Series::line(&format!("flow[{entity}]"), &xs, &ys, color));
        lanes += 1;
    }
    if lanes == 0 {
        plot = SvgPlot::new("BCN feedback", "t (s)", "Fb");
        let (mut xs, mut ys) = (Vec::new(), Vec::new());
        for e in tel.trace.iter() {
            if let Event::BcnMessageEmitted { t, fb, .. } = e {
                xs.push(*t);
                ys.push(*fb);
            }
        }
        if !xs.is_empty() {
            plot = plot.with_series(Series::scatter("Fb", &xs, &ys, COLOR_CYCLE[1]));
        }
    }
    with_annotations(plot, tel, spans)
}

/// Escapes a string for embedding in a JSON document.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a finite f64 as a JSON number, `null` otherwise.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The machine-readable summary of one run's telemetry.
fn summary_json(tel: &Telemetry, scenario: &str, spans: &[SpanInterval]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"scenario\": \"{}\",", json_escape(scenario));
    let _ = writeln!(out, "  \"level\": \"{}\",", tel.level());

    let _ = writeln!(out, "  \"counters\": {{");
    let counters: Vec<_> = tel.metrics.counters().filter(|(_, v)| *v > 0).collect();
    for (i, (name, v)) in counters.iter().enumerate() {
        let comma = if i + 1 < counters.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{}\": {v}{comma}", json_escape(name));
    }
    let _ = writeln!(out, "  }},");

    let _ = writeln!(out, "  \"histograms\": {{");
    let hists: Vec<_> = tel.metrics.histograms().filter(|(_, h)| h.count() > 0).collect();
    for (i, (name, h)) in hists.iter().enumerate() {
        let comma = if i + 1 < hists.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    \"{}\": {{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}{comma}",
            json_escape(name),
            h.count(),
            json_num(h.p50()),
            json_num(h.p90()),
            json_num(h.p99()),
            json_num(h.max())
        );
    }
    let _ = writeln!(out, "  }},");

    let _ = writeln!(out, "  \"series\": [");
    let series: Vec<_> = tel.series.iter().collect();
    for (i, (kind, entity, s)) in series.iter().enumerate() {
        let comma = if i + 1 < series.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"entity\": {entity}, \"points\": {}, \"offered\": {}}}{comma}",
            kind.name(),
            s.len(),
            s.offered()
        );
    }
    let _ = writeln!(out, "  ],");

    let _ = writeln!(out, "  \"spans\": [");
    for (i, s) in spans.iter().enumerate() {
        let comma = if i + 1 < spans.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"kind\": \"{}\", \"entity\": {}, \"t0\": {}, \"t1\": {}}}{comma}",
            s.kind.name(),
            s.entity,
            json_num(s.t0),
            json_num(s.t1)
        );
    }
    let _ = writeln!(out, "  ],");

    let mut by_type: Vec<(&str, u64)> = Vec::new();
    for e in tel.trace.iter() {
        let name = e.type_name();
        match by_type.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => by_type.push((name, 1)),
        }
    }
    let _ = writeln!(out, "  \"events\": {{");
    for (i, (name, c)) in by_type.iter().enumerate() {
        let comma = if i + 1 < by_type.len() { "," } else { "" };
        let _ = writeln!(out, "    \"{name}\": {c}{comma}");
    }
    let _ = writeln!(out, "  }},");
    let _ = writeln!(
        out,
        "  \"trace\": {{\"events\": {}, \"overwritten\": {}, \"open_spans\": {}}}",
        tel.trace.len(),
        tel.trace.overwritten(),
        tel.open_spans().len()
    );
    out.push_str("}\n");
    out
}

/// Renders every artifact from one telemetry shard.
#[must_use]
pub fn render(tel: &Telemetry, scenario: &str) -> ReportArtifacts {
    let spans = span_intervals(tel);
    ReportArtifacts {
        summary_json: summary_json(tel, scenario, &spans),
        queue_svg: queue_plot(tel, &spans).render(),
        rate_svg: rate_plot(tel, &spans).render(),
        prometheus: tel.metrics.to_prometheus(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::TelemetryLevel;

    fn instrumented() -> Telemetry {
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        for i in 0..20 {
            let t = f64::from(i) * 0.01;
            tel.queue_sample_entity(t, 0, 1e5 + f64::from(i) * 1e3);
            tel.series_sample(SeriesKind::FlowRate, 0, t, 2e8);
            tel.series_sample(SeriesKind::FlowRate, 1, t, 1e8);
        }
        tel.pause(0.05, 0.08, 3);
        tel.fault_injected(0.11, telemetry::FaultClass::DataLoss, 1);
        tel
    }

    #[test]
    fn artifacts_cover_series_spans_and_metrics() {
        let tel = instrumented();
        let art = render(&tel, "unit");
        assert!(art.summary_json.contains("\"scenario\": \"unit\""));
        assert!(art.summary_json.contains("\"pause_episode\""), "{}", art.summary_json);
        assert!(art.summary_json.contains("\"queue_depth\""));
        assert!(art.queue_svg.contains("polyline"), "queue lane missing");
        assert!(art.queue_svg.contains("fill-opacity"), "PAUSE band missing");
        assert!(art.queue_svg.contains("stroke-dasharray"), "fault marker missing");
        assert!(art.rate_svg.contains("flow[1]"), "rate lanes missing");
        assert!(art.prometheus.contains("# TYPE"), "prometheus export empty");
    }

    #[test]
    fn hybrid_epochs_render_as_ff_bands() {
        let mut tel = instrumented();
        tel.hybrid_epoch(0.12, 0.19, 0);
        let art = render(&tel, "hybrid");
        assert!(art.summary_json.contains("\"hybrid_epoch\""), "{}", art.summary_json);
        assert!(art.queue_svg.contains("FF"), "FF band legend missing: {}", art.queue_svg);
        assert!(art.queue_svg.contains("#2ca02c"), "FF band color missing");
    }

    #[test]
    fn trace_only_telemetry_falls_back_to_event_lanes() {
        // A shard rebuilt from a JSONL file has events but no series.
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        tel.trace.push(Event::QueueExtremum { t: 0.1, q: 5e5, kind: telemetry::ExtremumKind::Max });
        tel.trace.push(Event::BcnMessageEmitted { t: 0.2, fb: -3.0, source: 1 });
        let art = render(&tel, "from-trace");
        assert!(art.queue_svg.contains("circle"), "extremum scatter missing");
        assert!(art.rate_svg.contains("Fb"), "feedback fallback missing");
    }

    #[test]
    fn open_spans_extend_to_the_trace_horizon() {
        let mut tel = Telemetry::new(TelemetryLevel::Full);
        let id = tel.span_begin(0.1, SpanKind::FlowLifetime, 0, 0);
        assert_ne!(id, 0);
        tel.frame_dropped(0.9, 0);
        let spans = span_intervals(&tel);
        assert_eq!(spans.len(), 1);
        assert!((spans[0].t1 - 0.9).abs() < 1e-12, "open span must reach the last event");
    }

    #[test]
    fn summary_json_is_parseable_shape() {
        // Cheap structural check: balanced braces/brackets and no bare
        // non-finite numbers.
        let art = render(&instrumented(), "shape");
        let j = &art.summary_json;
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        assert!(!j.contains("inf") && !j.contains("NaN"), "{j}");
    }
}
