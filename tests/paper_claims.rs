//! Integration tests asserting the paper's headline claims end-to-end,
//! across the analysis (`bcn`), numerics (`odesolve`/`phaseplane`), and
//! packet (`dcesim`) layers.

use bcn::cases::{classify_params, exemplar};
use bcn::rounds::{first_round, round_ratio};
use bcn::simulate::SaturatingFluid;
use bcn::stability::{
    criterion, exact_verdict, theorem1_holds, theorem1_required_buffer, StabilityVerdict,
};
use bcn::units::MBIT;
use bcn::{linear_baseline, BcnParams, CaseId};

/// Section IV-C worked example: required buffer ~13.75-13.85 Mbit,
/// nearly 3x the 5 Mbit BDP.
#[test]
fn worked_example_numbers() {
    let p = BcnParams::paper_defaults();
    let req = theorem1_required_buffer(&p);
    assert!((13.7 * MBIT..13.9 * MBIT).contains(&req), "required {req}");
    let ratio = req / (5.0 * MBIT);
    assert!((2.7..2.85).contains(&ratio), "ratio {ratio}");
    assert!(!theorem1_holds(&p));
}

/// Proposition 1: the isolated linear subsystems are stable for any
/// positive parameters — the baseline's verdict is vacuous.
#[test]
fn proposition1_baseline_always_passes() {
    for gi in [0.01, 1.0, 100.0] {
        for gd in [1.0 / 1024.0, 0.125, 0.9] {
            let p = BcnParams::paper_defaults().with_gi(gi).with_gd(gd);
            assert!(linear_baseline::analyze(&p).overall_stable);
        }
    }
}

/// The paper's motivating gap: the baseline approves the worked example
/// while the exact trajectory overflows the BDP buffer — and the
/// physical (saturating) fluid model actually drops.
#[test]
fn motivating_gap_baseline_vs_drops() {
    let p = BcnParams::paper_defaults();
    assert!(linear_baseline::analyze(&p).overall_stable);
    assert!(!exact_verdict(&p, 20).strongly_stable);

    // Physical confirmation on the faster test scale (the paper-scale
    // system oscillates for minutes of model time).
    let t = BcnParams::test_defaults();
    let fr = first_round(&t).unwrap();
    let tight = t.clone().with_buffer(t.q0 + 0.5 * fr.max1_x);
    assert!(linear_baseline::analyze(&tight).overall_stable);
    let run = SaturatingFluid::linearized(tight).run_canonical(3.0);
    assert!(run.has_drops(), "physical model must drop packets");
}

/// Propositions 2-4 dispatch: each case is judged by its own rule and
/// all verdicts are sound against the exact trace.
#[test]
fn case_criteria_dispatch_and_soundness() {
    let base = BcnParams::test_defaults().with_buffer(4.0e5);
    for case in [CaseId::Case1, CaseId::Case2, CaseId::Case3, CaseId::Case4, CaseId::Case5] {
        let p = exemplar(&base, case);
        assert_eq!(classify_params(&p).case, case);
        let v = criterion(&p);
        if v.is_guaranteed() {
            let exact = exact_verdict(&p, 40);
            assert!(exact.strongly_stable, "{case}: criterion unsound ({v:?}, {exact:?})");
        }
    }
}

/// Cases 3 and 4 are unconditionally strongly stable (Proposition 4) —
/// even with the most absurdly tight legal buffer. Case 5 splits (paper
/// erratum, see `bcn::CaseId::Case5`): the decrease-critical branch is
/// unconditional, the increase-critical branch is not.
#[test]
fn cases_3_to_4_stable_with_tight_buffers() {
    let base = BcnParams::test_defaults();
    for case in [CaseId::Case3, CaseId::Case4] {
        let p = exemplar(&base, case).with_buffer(base.q0 * 1.05);
        let v = criterion(&p);
        assert!(v.is_guaranteed(), "{case}: {v:?}");
        assert!(exact_verdict(&p, 40).strongly_stable, "{case}");
    }
}

/// The Case-5 erratum, both branches: the decrease-critical branch
/// matches the paper's unconditional claim; the increase-critical branch
/// genuinely overshoots past tight buffers (the paper's printed
/// Proposition 4 would wrongly approve it).
#[test]
fn case5_erratum_both_branches() {
    let base = BcnParams::test_defaults();

    // Decrease-critical: unconditional, like Case 3.
    let dec = bcn::cases::exemplar_case5_decrease(&base).with_buffer(base.q0 * 1.05);
    assert_eq!(classify_params(&dec).case, CaseId::Case5);
    assert!(criterion(&dec).is_guaranteed());
    assert!(exact_verdict(&dec, 40).strongly_stable);

    // Increase-critical with a roomy buffer: conditional approval...
    let inc = exemplar(&base, CaseId::Case5).with_buffer(1.0e7);
    assert_eq!(classify_params(&inc).case, CaseId::Case5);
    let exact_roomy = exact_verdict(&inc, 40);
    assert!(exact_roomy.strongly_stable, "{exact_roomy:?}");
    assert!(criterion(&inc).is_guaranteed());

    // ...but with the paper-scale buffer the trajectory escapes, and the
    // amended criterion correctly refuses where the printed Proposition 4
    // would approve.
    let tight = exemplar(&base, CaseId::Case5).with_buffer(4.0e5);
    let exact_tight = exact_verdict(&tight, 40);
    assert!(!exact_tight.strongly_stable, "{exact_tight:?}");
    assert!(!criterion(&tight).is_guaranteed());
}

/// Theorem 1's remark: max overshoot scales as sqrt(N/C) and
/// proportionally to q0, and is independent of w and pm.
#[test]
fn overshoot_scaling_remarks() {
    let p = BcnParams::test_defaults();
    let over = |p: &BcnParams| {
        let fr = first_round(p).expect("case 1");
        fr.max1_x
    };
    let base = over(&p);
    // q0 doubling doubles the overshoot (exactly: linear flows).
    let q2 = over(&p.clone().with_q0(2.0 * p.q0).with_buffer(4.0e5));
    assert!((q2 / base - 2.0).abs() < 1e-9, "q0 scaling {q2} vs {base}");
    // N quadrupling doubles it approximately (the sqrt law is the bound's
    // shape; the exact first-round max also shifts with the damping).
    let n4 = over(&p.clone().with_n_flows(4 * p.n_flows));
    assert!((n4 / base - 2.0).abs() < 0.1, "N scaling ratio {}", n4 / base);
    // w and pm leave the Theorem-1 requirement untouched.
    let r = theorem1_required_buffer(&p);
    assert_eq!(r, theorem1_required_buffer(&p.clone().with_w(17.0)));
    assert_eq!(r, theorem1_required_buffer(&p.clone().with_pm(0.5)));
}

/// The limit cycle (Fig. 7): rho -> 1 as w -> 0, and at w ~ 0 the orbit
/// neither grows nor decays across many rounds.
#[test]
fn limit_cycle_at_vanishing_w() {
    let base = BcnParams::test_defaults();
    let rho_normal = round_ratio(&base).unwrap();
    assert!(rho_normal < 1.0);
    let rho_degenerate = round_ratio(&base.clone().with_w(1e-12)).unwrap();
    assert!((rho_degenerate - 1.0).abs() < 1e-6, "rho = {rho_degenerate}");
    // Monotone in w.
    let rho_mid = round_ratio(&base.clone().with_w(0.5)).unwrap();
    assert!(rho_degenerate > rho_mid && rho_mid > rho_normal * 0.999);
}

/// Theorem 1 is sufficient *and* conservative: whenever it passes, the
/// exact trace confirms; and there exist buffers where the exact trace
/// passes but Theorem 1 refuses.
#[test]
fn theorem1_sufficient_but_conservative() {
    let p = BcnParams::test_defaults();
    let exact = exact_verdict(&p, 40);
    let exact_need = p.q0 + exact.max_x;
    let thm_need = theorem1_required_buffer(&p);
    assert!(thm_need > exact_need, "thm {thm_need} vs exact {exact_need}");
    // A buffer between the two: exactly the conservatism gap.
    let mid = 0.5 * (exact_need + thm_need);
    let gap = p.clone().with_buffer(mid);
    assert!(!theorem1_holds(&gap));
    assert!(exact_verdict(&gap, 40).strongly_stable);
}

/// The criterion verdict explains its refusals.
#[test]
fn refusals_carry_reasons() {
    let p = BcnParams::test_defaults();
    let fr = first_round(&p).unwrap();
    let tight = p.clone().with_buffer(p.q0 + 0.5 * fr.max1_x);
    match criterion(&tight) {
        StabilityVerdict::NotGuaranteed(reason) => {
            assert!(reason.contains("maximum"), "reason: {reason}");
        }
        v => panic!("expected refusal, got {v:?}"),
    }
}
